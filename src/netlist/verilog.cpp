#include "src/netlist/verilog.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>

#include "src/util/strcat.hpp"

namespace tp {
namespace {

// --- shared cell descriptions ------------------------------------------------

struct PinNames {
  const char* type;                 // Verilog cell type
  std::vector<const char*> inputs;  // in pin order of CellKind
  const char* output;
};

const PinNames* pin_names(CellKind kind) {
  static const std::map<CellKind, PinNames> kTable = {
      {CellKind::kBuf, {"TP_BUF", {"A"}, "Y"}},
      {CellKind::kInv, {"TP_INV", {"A"}, "Y"}},
      {CellKind::kAnd2, {"TP_AND2", {"A", "B"}, "Y"}},
      {CellKind::kAnd3, {"TP_AND3", {"A", "B", "C"}, "Y"}},
      {CellKind::kOr2, {"TP_OR2", {"A", "B"}, "Y"}},
      {CellKind::kOr3, {"TP_OR3", {"A", "B", "C"}, "Y"}},
      {CellKind::kNand2, {"TP_NAND2", {"A", "B"}, "Y"}},
      {CellKind::kNand3, {"TP_NAND3", {"A", "B", "C"}, "Y"}},
      {CellKind::kNor2, {"TP_NOR2", {"A", "B"}, "Y"}},
      {CellKind::kNor3, {"TP_NOR3", {"A", "B", "C"}, "Y"}},
      {CellKind::kXor2, {"TP_XOR2", {"A", "B"}, "Y"}},
      {CellKind::kXnor2, {"TP_XNOR2", {"A", "B"}, "Y"}},
      {CellKind::kMux2, {"TP_MUX2", {"A", "B", "S"}, "Y"}},
      {CellKind::kAoi21, {"TP_AOI21", {"A", "B", "C"}, "Y"}},
      {CellKind::kOai21, {"TP_OAI21", {"A", "B", "C"}, "Y"}},
      {CellKind::kMaj3, {"TP_MAJ3", {"A", "B", "C"}, "Y"}},
      {CellKind::kDff, {"TP_DFF", {"D", "CK"}, "Q"}},
      {CellKind::kDffEn, {"TP_DFFEN", {"D", "EN", "CK"}, "Q"}},
      {CellKind::kLatchH, {"TP_LATCHH", {"D", "G"}, "Q"}},
      {CellKind::kLatchL, {"TP_LATCHL", {"D", "G"}, "Q"}},
      {CellKind::kLatchP, {"TP_LATCHP", {"D", "G"}, "Q"}},
      {CellKind::kIcg, {"TP_ICG", {"EN", "CK"}, "GCLK"}},
      {CellKind::kIcgM1, {"TP_ICGM1", {"EN", "CK", "PB"}, "GCLK"}},
      {CellKind::kIcgNoLatch, {"TP_ICGNL", {"EN", "CK"}, "GCLK"}},
      {CellKind::kClkBuf, {"TP_CLKBUF", {"A"}, "Y"}},
      {CellKind::kClkInv, {"TP_CLKINV", {"A"}, "Y"}},
      {CellKind::kDffDet, {"TP_DFFDET", {"D", "CK"}, "Q"}},
      {CellKind::kClkDiv2, {"TP_CLKDIV2", {"CK"}, "Y"}},
  };
  const auto it = kTable.find(kind);
  return it == kTable.end() ? nullptr : &it->second;
}

CellKind kind_for_type(const std::string& type, bool& ok) {
  static const std::map<std::string, CellKind> kTable = [] {
    std::map<std::string, CellKind> table;
    for (int k = 0; k < kNumCellKinds; ++k) {
      const auto kind = static_cast<CellKind>(k);
      if (const PinNames* p = pin_names(kind)) table[p->type] = kind;
    }
    return table;
  }();
  const auto it = kTable.find(type);
  ok = it != kTable.end();
  return ok ? it->second : CellKind::kBuf;
}

// --- writer -------------------------------------------------------------------

std::string sanitize(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c
                                                                     : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "n_" + out;
  }
  return out;
}

/// Unique sanitized identifier per net / instance.
class Namer {
 public:
  std::string name(const std::string& wanted) {
    std::string base = sanitize(wanted);
    std::string candidate = base;
    int suffix = 1;
    while (!used_.emplace(candidate).second) {
      candidate = cat(base, "_", suffix++);
    }
    return candidate;
  }

 private:
  std::set<std::string> used_;
};

}  // namespace

void write_verilog(const Netlist& netlist, std::ostream& out) {
  Namer namer;
  std::vector<std::string> net_name(netlist.num_nets());
  for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
    if (netlist.net(NetId{n}).alive) {
      net_name[n] = namer.name(netlist.net(NetId{n}).name);
    }
  }

  std::vector<std::string> ports;
  std::vector<std::pair<std::string, NetId>> po_assigns;
  for (const CellId id : netlist.inputs()) {
    if (netlist.cell(id).alive) {
      ports.push_back(net_name[netlist.cell(id).out.value()]);
    }
  }
  for (const CellId id : netlist.outputs()) {
    if (!netlist.cell(id).alive) continue;
    const std::string port = namer.name(netlist.cell(id).name + "_po");
    ports.push_back(port);
    po_assigns.push_back({port, netlist.cell(id).ins[0]});
  }

  out << "// structural netlist written by triphase\n";
  out << "module " << sanitize(netlist.name()) << " (";
  for (std::size_t i = 0; i < ports.size(); ++i) {
    out << (i ? ", " : "") << ports[i];
  }
  out << ");\n";

  // Clock plan directives.
  const ClockSpec& clocks = netlist.clocks();
  for (const PhaseWaveform& w : clocks.phases) {
    out << "  // tp-clock " << phase_name(w.phase) << ' '
        << net_name[w.root.value()] << ' ' << w.rise_ps << ' ' << w.fall_ps
        << ' ' << clocks.period_ps << "\n";
  }

  for (const CellId id : netlist.inputs()) {
    if (netlist.cell(id).alive) {
      out << "  input " << net_name[netlist.cell(id).out.value()] << ";\n";
    }
  }
  for (const auto& [port, src] : po_assigns) {
    (void)src;
    out << "  output " << port << ";\n";
  }
  for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(NetId{n});
    if (!net.alive) continue;
    const CellId driver = net.driver;
    if (driver.valid() && netlist.cell(driver).kind == CellKind::kInput) {
      continue;  // already an input port
    }
    out << "  wire " << net_name[n] << ";\n";
  }

  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    switch (cell.kind) {
      case CellKind::kInput:
      case CellKind::kOutput:
        continue;
      case CellKind::kConst0:
        out << "  assign " << net_name[cell.out.value()] << " = 1'b0;\n";
        continue;
      case CellKind::kConst1:
        out << "  assign " << net_name[cell.out.value()] << " = 1'b1;\n";
        continue;
      default:
        break;
    }
    const PinNames* pins = pin_names(cell.kind);
    require(pins != nullptr, "write_verilog: unmapped cell kind");
    out << "  " << pins->type;
    if (is_register(cell.kind) && cell.init) out << " #(.INIT(1'b1))";
    out << ' ' << namer.name(cell.name) << " (";
    for (std::size_t i = 0; i < cell.ins.size(); ++i) {
      out << (i ? ", " : "") << '.' << pins->inputs[i] << '('
          << net_name[cell.ins[i].value()] << ')';
    }
    out << (cell.ins.empty() ? "" : ", ") << '.' << pins->output << '('
        << net_name[cell.out.value()] << ")";
    out << ");\n";
  }
  for (const auto& [port, src] : po_assigns) {
    out << "  assign " << port << " = " << net_name[src.value()] << ";\n";
  }
  out << "endmodule\n";
}

std::string to_verilog(const Netlist& netlist) {
  std::ostringstream os;
  write_verilog(netlist, os);
  return os.str();
}

// --- reader --------------------------------------------------------------------

namespace {

struct Token {
  enum Kind { kIdent, kPunct, kLiteral, kEnd } kind = kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::istream& in) : in_(in) {}

  /// Clock directives seen so far: phase name, net, rise, fall, period.
  struct ClockDirective {
    std::string phase, net;
    std::int64_t rise, fall, period;
  };
  std::vector<ClockDirective> clock_directives;

  Token next() {
    for (;;) {
      const int c = in_.get();
      if (c == EOF) return {Token::kEnd, "", line_};
      if (c == '\n') {
        ++line_;
        continue;
      }
      if (std::isspace(c)) continue;
      if (c == '/' && in_.peek() == '/') {
        in_.get();  // consume the second slash
        std::string comment;
        std::getline(in_, comment);
        ++line_;
        parse_directive(comment);
        continue;
      }
      if (std::isalpha(c) || c == '_') {
        std::string ident(1, static_cast<char>(c));
        while (std::isalnum(in_.peek()) || in_.peek() == '_') {
          ident += static_cast<char>(in_.get());
        }
        return {Token::kIdent, std::move(ident), line_};
      }
      if (std::isdigit(c)) {
        std::string literal(1, static_cast<char>(c));
        while (std::isalnum(in_.peek()) || in_.peek() == '\'') {
          literal += static_cast<char>(in_.get());
        }
        return {Token::kLiteral, std::move(literal), line_};
      }
      return {Token::kPunct, std::string(1, static_cast<char>(c)), line_};
    }
  }

 private:
  void parse_directive(const std::string& comment) {
    std::istringstream is(comment);
    std::string tag;
    is >> tag;
    if (tag != "tp-clock") return;
    ClockDirective d;
    if (is >> d.phase >> d.net >> d.rise >> d.fall >> d.period) {
      clock_directives.push_back(std::move(d));
    }
  }

  std::istream& in_;
  int line_ = 1;
};

Phase phase_by_name(const std::string& name) {
  for (const Phase p : {Phase::kClk, Phase::kClkBar, Phase::kP1, Phase::kP2,
                        Phase::kP3}) {
    if (name == phase_name(p)) return p;
  }
  return Phase::kNone;
}

class Parser {
 public:
  explicit Parser(std::istream& in) : lexer_(in) { advance(); }

  Netlist parse() {
    expect_ident("module");
    Netlist netlist(expect(Token::kIdent).text);
    expect_punct("(");
    std::vector<std::string> ports;
    if (!is_punct(")")) {
      for (;;) {
        ports.push_back(expect(Token::kIdent).text);
        if (is_punct(")")) break;
        expect_punct(",");
      }
    }
    expect_punct(")");
    expect_punct(";");

    while (!is_ident("endmodule")) {
      if (is_ident("input")) {
        advance();
        const std::string name = expect(Token::kIdent).text;
        expect_punct(";");
        const CellId pi = netlist.add_input(name);
        nets_[name] = netlist.cell(pi).out;
      } else if (is_ident("output")) {
        advance();
        output_ports_.push_back(expect(Token::kIdent).text);
        expect_punct(";");
      } else if (is_ident("wire")) {
        advance();
        const std::string name = expect(Token::kIdent).text;
        expect_punct(";");
        nets_[name] = netlist.add_net(name);
      } else if (is_ident("assign")) {
        advance();
        const std::string lhs = expect(Token::kIdent).text;
        expect_punct("=");
        parse_assign_rhs(netlist, lhs);
        expect_punct(";");
      } else {
        parse_instance(netlist);
      }
    }
    advance();  // endmodule

    finish_outputs(netlist);
    apply_clocks(netlist);
    netlist.validate();
    return netlist;
  }

 private:
  void parse_assign_rhs(Netlist& netlist, const std::string& lhs) {
    if (token_.kind == Token::kLiteral) {
      const bool one = token_.text == "1'b1";
      require(one || token_.text == "1'b0",
              error("only 1'b0 / 1'b1 constants supported"));
      advance();
      netlist.add_cell(one ? CellKind::kConst1 : CellKind::kConst0,
                       "const_" + lhs, {}, net(netlist, lhs));
      return;
    }
    const std::string rhs = expect(Token::kIdent).text;
    // `assign po = net` — a primary-output alias.
    pending_assigns_.push_back({lhs, rhs});
  }

  void parse_instance(Netlist& netlist) {
    const std::string type = expect(Token::kIdent).text;
    bool known = false;
    const CellKind kind = kind_for_type(type, known);
    require(known, error(cat("unknown cell type ", type)));
    bool init = false;
    if (is_punct("#")) {  // #(.INIT(1'b1))
      advance();
      expect_punct("(");
      expect_punct(".");
      expect_ident("INIT");
      expect_punct("(");
      init = expect(Token::kLiteral).text == "1'b1";
      expect_punct(")");
      expect_punct(")");
    }
    const std::string instance = expect(Token::kIdent).text;
    expect_punct("(");
    std::map<std::string, std::string> connections;
    for (;;) {
      expect_punct(".");
      const std::string pin = expect(Token::kIdent).text;
      expect_punct("(");
      connections[pin] = expect(Token::kIdent).text;
      expect_punct(")");
      if (is_punct(")")) break;
      expect_punct(",");
    }
    expect_punct(")");
    expect_punct(";");

    const PinNames* pins = pin_names(kind);
    std::vector<NetId> ins;
    for (const char* pin : pins->inputs) {
      const auto it = connections.find(pin);
      require(it != connections.end(),
              error(cat(instance, ": missing pin ", pin)));
      ins.push_back(net(netlist, it->second));
    }
    const auto out_it = connections.find(pins->output);
    require(out_it != connections.end(),
            error(cat(instance, ": missing output pin ", pins->output)));
    const CellId id = netlist.add_cell(kind, instance, std::move(ins),
                                       net(netlist, out_it->second));
    if (init) netlist.set_init(id, true);
  }

  void finish_outputs(Netlist& netlist) {
    for (const std::string& port : output_ports_) {
      const auto it = std::find_if(
          pending_assigns_.begin(), pending_assigns_.end(),
          [&](const auto& a) { return a.first == port; });
      require(it != pending_assigns_.end(),
              error(cat("output ", port, " has no assign")));
      netlist.add_output(port, net(netlist, it->second));
    }
  }

  void apply_clocks(Netlist& netlist) {
    ClockSpec spec;
    for (const Lexer::ClockDirective& d : lexer_.clock_directives) {
      const auto it = nets_.find(d.net);
      require(it != nets_.end(),
              error(cat("tp-clock names unknown net ", d.net)));
      const Phase phase = phase_by_name(d.phase);
      require(phase != Phase::kNone,
              error(cat("tp-clock names unknown phase ", d.phase)));
      spec.period_ps = d.period;
      spec.phases.push_back({phase, it->second, d.rise, d.fall});
      const CellId driver = netlist.net(it->second).driver;
      if (driver.valid() &&
          netlist.cell(driver).kind == CellKind::kInput) {
        netlist.set_clock_root(driver, phase);
      }
    }
    netlist.clocks() = spec;
    // Tag sequential/clock cells with the phase of their clock root.
    for (const CellId id : netlist.live_cells()) {
      const Cell& cell = netlist.cell(id);
      const int pin = clock_pin(cell.kind);
      if (pin < 0) continue;
      NetId gate = cell.ins[static_cast<std::size_t>(pin)];
      for (int hop = 0; hop < 64; ++hop) {
        if (const PhaseWaveform* w = [&]() -> const PhaseWaveform* {
              for (const PhaseWaveform& p : spec.phases) {
                if (p.root == gate) return &p;
              }
              return nullptr;
            }()) {
          netlist.set_phase(id, w->phase);
          break;
        }
        const CellId driver = netlist.net(gate).driver;
        if (!driver.valid()) break;
        const Cell& dcell = netlist.cell(driver);
        const int dpin = clock_pin(dcell.kind);
        if (dpin < 0 || !is_clock_cell(dcell.kind)) break;
        gate = dcell.ins[static_cast<std::size_t>(dpin)];
      }
    }
  }

  // --- token plumbing -------------------------------------------------------

  void advance() { token_ = lexer_.next(); }

  [[nodiscard]] bool is_ident(const char* text) const {
    return token_.kind == Token::kIdent && token_.text == text;
  }
  [[nodiscard]] bool is_punct(const char* text) const {
    return token_.kind == Token::kPunct && token_.text == text;
  }

  Token expect(Token::Kind kind) {
    require(token_.kind == kind, error("unexpected token '" + token_.text +
                                       "'"));
    Token t = token_;
    advance();
    return t;
  }
  void expect_ident(const char* text) {
    require(is_ident(text), error(cat("expected '", text, "'")));
    advance();
  }
  void expect_punct(const char* text) {
    require(is_punct(text), error(cat("expected '", text, "', got '",
                                      token_.text, "'")));
    advance();
  }

  [[nodiscard]] std::string error(const std::string& message) const {
    return cat("verilog:", token_.line, ": ", message);
  }

  NetId net(Netlist& netlist, const std::string& name) {
    const auto it = nets_.find(name);
    if (it != nets_.end()) return it->second;
    // Implicitly declared net (tolerated, like most Verilog tools).
    const NetId id = netlist.add_net(name);
    nets_[name] = id;
    return id;
  }

  Lexer lexer_;
  Token token_;
  std::unordered_map<std::string, NetId> nets_;
  std::vector<std::string> output_ports_;
  std::vector<std::pair<std::string, std::string>> pending_assigns_;
};

}  // namespace

Netlist read_verilog(std::istream& in) { return Parser(in).parse(); }

Netlist read_verilog_string(const std::string& text) {
  std::istringstream is(text);
  return read_verilog(is);
}

}  // namespace tp
