// Netlist statistics and DOT export.
//
// Structural summaries used by the benches, the CLI, and the benchmark
// generators' self-checks: cell-kind histograms, register phase mix, logic
// depth, fanout distribution, and the FF-graph feedback profile that
// drives the conversion's effectiveness. The DOT export renders small
// designs (or register graphs of large ones) for inspection.
#pragma once

#include <array>
#include <iosfwd>
#include <string>

#include "src/netlist/traverse.hpp"

namespace tp {

struct NetlistStats {
  std::array<int, kNumCellKinds> cells_by_kind{};
  int live_cells = 0;
  int live_nets = 0;
  int registers = 0;
  int registers_by_phase[6] = {0, 0, 0, 0, 0, 0};  // indexed by Phase
  int combinational = 0;
  int clock_cells = 0;
  int max_logic_depth = 0;
  double avg_fanout = 0;
  int max_fanout = 0;
  // FF-graph profile.
  int ff_graph_edges = 0;
  int ff_self_loops = 0;
  double avg_ff_fanout = 0;

  [[nodiscard]] int count(CellKind kind) const {
    return cells_by_kind[static_cast<std::size_t>(kind)];
  }
};

NetlistStats compute_stats(const Netlist& netlist);

/// Multi-line human-readable rendering.
std::string format_stats(const NetlistStats& stats);

/// Graphviz DOT of the full netlist (cells as nodes). Intended for small
/// designs; registers are boxes colored by phase, clock cells are
/// diamonds.
void write_dot(const Netlist& netlist, std::ostream& out);

/// Graphviz DOT of the register graph only (one node per register, edges
/// for combinational reachability) — readable even for large designs.
void write_register_graph_dot(const Netlist& netlist, std::ostream& out);

}  // namespace tp
