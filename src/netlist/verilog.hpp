// Structural Verilog export / import.
//
// The writer emits a flat gate-level module using a small companion cell
// library (primitive gates as Verilog primitives or behavioral one-liners,
// sequential cells as `TP_DFF`, `TP_LATCHH`, `TP_ICG`, ... instances), so a
// converted design can be inspected, simulated, or consumed by downstream
// tools. The reader parses the same subset back, enabling round-trip tests
// and import of externally produced netlists that stick to the subset:
//
//   module <name> (port, ...);
//     input  a; output b; wire w1;
//     TP_AND2 g1 (.A(a), .B(w1), .Y(b));
//     TP_DFF  r1 (.D(w1), .CK(clk), .Q(q), .INIT(1'b0));   // INIT optional
//   endmodule
//
// plus `// tp-clock <phase> <net> <rise_ps> <fall_ps> <period_ps>` comment
// directives that carry the clock plan.
#pragma once

#include <iosfwd>
#include <string>

#include "src/netlist/netlist.hpp"

namespace tp {

/// Writes `netlist` as structural Verilog.
void write_verilog(const Netlist& netlist, std::ostream& out);
std::string to_verilog(const Netlist& netlist);

/// Parses the structural subset emitted by write_verilog. Throws tp::Error
/// with a line number on any syntax or semantic problem.
Netlist read_verilog(std::istream& in);
Netlist read_verilog_string(const std::string& text);

}  // namespace tp
