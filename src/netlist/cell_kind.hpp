// Cell kinds and their pin/function semantics.
//
// Every cell in a Netlist has a CellKind that fixes its pin count, pin
// meaning, and (for combinational kinds) its boolean function. Sequential and
// clock-network kinds (flip-flops, latches, integrated clock gates, clock
// buffers) are interpreted by the simulator and the timing engine.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace tp {

enum class CellKind : std::uint8_t {
  // Interface pseudo-cells.
  kInput,    // no inputs; drives one net (also used for clock roots)
  kOutput,   // one input {A}; no output net
  kConst0,   // no inputs; constant-0 net
  kConst1,   // no inputs; constant-1 net

  // Combinational gates. Input order is positional: {A, B, C, ...}.
  kBuf,      // {A}
  kInv,      // {A}
  kAnd2,     // {A, B}
  kAnd3,     // {A, B, C}
  kOr2,      // {A, B}
  kOr3,      // {A, B, C}
  kNand2,    // {A, B}
  kNand3,    // {A, B, C}
  kNor2,     // {A, B}
  kNor3,     // {A, B, C}
  kXor2,     // {A, B}
  kXnor2,    // {A, B}
  kMux2,     // {A, B, S} -> S ? B : A
  kAoi21,    // {A, B, C} -> !((A & B) | C)
  kOai21,    // {A, B, C} -> !((A | B) & C)
  kMaj3,     // {A, B, C} -> majority

  // Sequential cells.
  kDff,      // {D, CK}: sample D on rising CK
  kDffEn,    // {D, EN, CK}: sample D on rising CK when EN, else hold
             // ("enabled clock" style of Fig. 2(a) — the mux is internal)
  kLatchH,   // {D, G}: transparent while G is high
  kLatchL,   // {D, G}: transparent while G is low
  kLatchP,   // {D, G}: pulsed latch - samples at the rising pulse edge
             // (hold-clean pulsed latches behave edge-triggered; the STA
             // still grants the [rise, fall] borrowing window)

  // Clock-network cells.
  kIcg,        // {EN, CK} -> GCLK; conventional integrated clock gate:
               // internal latch captures EN while CK is low, GCLK = ENLT & CK
               // (Fig. 3(c0))
  kIcgM1,      // {EN, CK, PB} -> GCLK; modification M1 (Fig. 3(c1)): the
               // internal latch is transparent while PB (e.g. p3 for a p2 CG)
               // is high instead of while CK is low
  kIcgNoLatch, // {EN, CK} -> GCLK = EN & CK; modification M2 (Fig. 3(c2)):
               // the internal latch is removed
  kClkBuf,     // {A}: clock-tree buffer
  kClkInv,     // {A}: clock-tree inverter

  // Backend-specific cells, appended after the seed kinds so the numeric
  // kind values (and with them netlist hashes) of existing designs never
  // move.
  kDffDet,     // {D, CK}: dual-edge-triggered flip-flop — samples D on BOTH
               // clock edges (arXiv 1307.3075). Paired with kClkDiv2 so one
               // toggle per cycle reaches the clock pin and the FF still
               // samples once per cycle.
  kClkDiv2,    // {CK}: clock-network divide-by-two — internal state toggles
               // on each rising CK edge and drives the output. Converts "N
               // rising edges" into "N toggles" for DET sinks; a gated-off
               // upstream ICG therefore still means "no edge, hold".
};

inline constexpr int kNumCellKinds = static_cast<int>(CellKind::kClkDiv2) + 1;

/// Human-readable kind name ("AND2", "DFF", ...).
std::string_view cell_kind_name(CellKind kind);

/// Number of input pins the kind requires.
int num_inputs(CellKind kind);

/// True when the kind has an output net (everything except kOutput).
bool has_output(CellKind kind);

/// True for gates whose output is a pure boolean function of their inputs
/// (includes kBuf..kMaj3 and also kIcgNoLatch / kClkBuf / kClkInv, which are
/// stateless).
bool is_combinational(CellKind kind);

/// True for state-holding storage cells: kDff, kDffEn, kDffDet, kLatchH,
/// kLatchL, kLatchP.
bool is_register(CellKind kind);

/// True for edge-triggered registers (kDff, kDffEn, kDffDet).
bool is_flip_flop(CellKind kind);

/// True for registers that sample on a clock edge rather than following a
/// level: flip-flops (incl. the dual-edge kDffDet) and hold-clean pulsed
/// latches (kLatchP). The simulator and the equivalence checker use this to
/// pick edge-detection vs. transparent-settle semantics.
bool samples_on_edge(CellKind kind);

/// True for level-sensitive registers (kLatchH, kLatchL). Pulsed latches
/// (kLatchP) are registers but sample on the pulse edge, so they are not
/// included here.
bool is_latch(CellKind kind);

/// True for integrated-clock-gate kinds (kIcg, kIcgM1, kIcgNoLatch).
bool is_icg(CellKind kind);

/// True for cells that live on the clock network (ICGs, clock buffers, and
/// the kClkDiv2 divider). Note kClkDiv2 is stateful, not combinational.
bool is_clock_cell(CellKind kind);

/// Index of the clock input pin for sequential/clock cells, -1 otherwise.
/// kDff/kDffDet -> 1, kDffEn -> 2, latches -> 1 (the gate pin), ICGs -> 1,
/// clock buffers and kClkDiv2 -> 0.
int clock_pin(CellKind kind);

/// Evaluate a stateless kind (is_combinational). `ins` must have
/// num_inputs(kind) entries.
bool eval_comb(CellKind kind, std::span<const bool> ins);

/// Word-parallel evaluation of a stateless kind: bit i of every operand
/// word belongs to an independent simulation lane (src/sim/wide_sim.hpp),
/// so one call evaluates the gate in up to 64 lanes at once. `ins` must
/// have num_inputs(kind) entries. Inverting kinds set bits outside the
/// active lanes too; callers mask the result with their lane mask.
std::uint64_t eval_comb_word(CellKind kind,
                             std::span<const std::uint64_t> ins);

}  // namespace tp
