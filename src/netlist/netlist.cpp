#include "src/netlist/netlist.hpp"

#include <algorithm>
#include "src/util/strcat.hpp"

namespace tp {

std::string_view phase_name(Phase phase) {
  switch (phase) {
    case Phase::kNone: return "-";
    case Phase::kClk: return "clk";
    case Phase::kClkBar: return "clkbar";
    case Phase::kP1: return "p1";
    case Phase::kP2: return "p2";
    case Phase::kP3: return "p3";
  }
  return "?";
}

const PhaseWaveform* ClockSpec::find(Phase phase) const {
  for (const auto& w : phases) {
    if (w.phase == phase) return &w;
  }
  return nullptr;
}

NetId ClockSpec::root(Phase phase) const {
  const PhaseWaveform* w = find(phase);
  require(w != nullptr, "ClockSpec::root: phase not present");
  return w->root;
}

ClockSpec single_phase_spec(std::int64_t period_ps, NetId clk_root) {
  ClockSpec spec;
  spec.period_ps = period_ps;
  spec.phases.push_back({Phase::kClk, clk_root, 0, period_ps / 2});
  return spec;
}

ClockSpec two_phase_spec(std::int64_t period_ps, NetId clk_root,
                         NetId clkbar_root) {
  ClockSpec spec;
  spec.period_ps = period_ps;
  spec.phases.push_back({Phase::kClk, clk_root, 0, period_ps / 2});
  spec.phases.push_back({Phase::kClkBar, clkbar_root, period_ps / 2,
                         period_ps});
  return spec;
}

ClockSpec three_phase_spec(std::int64_t period_ps, NetId p1_root,
                           NetId p2_root, NetId p3_root) {
  ClockSpec spec;
  spec.period_ps = period_ps;
  const std::int64_t third = period_ps / 3;
  spec.phases.push_back({Phase::kP1, p1_root, 0, third});
  spec.phases.push_back({Phase::kP2, p2_root, third, 2 * third});
  spec.phases.push_back({Phase::kP3, p3_root, 2 * third, period_ps});
  return spec;
}

NetId Netlist::add_net(std::string name) {
  const NetId id{static_cast<std::uint32_t>(nets_.size())};
  Net net;
  net.name = std::move(name);
  nets_.push_back(std::move(net));
  return id;
}

CellId Netlist::add_cell(CellKind kind, std::string name,
                         std::vector<NetId> ins, NetId out, Phase phase) {
  require(static_cast<int>(ins.size()) == num_inputs(kind),
          cat("add_cell ", name, ": wrong input count"));
  require(has_output(kind) == out.valid(),
          cat("add_cell ", name, ": output net mismatch"));

  const CellId id{static_cast<std::uint32_t>(cells_.size())};
  Cell cell;
  cell.kind = kind;
  cell.name = std::move(name);
  cell.ins = std::move(ins);
  cell.out = out;
  cell.phase = phase;
  for (std::uint32_t pin = 0; pin < cell.ins.size(); ++pin) {
    require(cell.ins[pin].valid(), "add_cell: invalid input net");
    nets_[cell.ins[pin].value()].fanouts.push_back({id, pin});
  }
  if (out.valid()) {
    Net& net = nets_[out.value()];
    require(!net.driver.valid(),
            cat("add_cell: net ", net.name, " already driven"));
    net.driver = id;
    if (is_clock_cell(kind)) net.is_clock = true;
  }
  cells_.push_back(std::move(cell));
  touch(id);
  if (out.valid()) touch(out);
  for (const NetId in : cells_.back().ins) touch(in);
  return id;
}

CellId Netlist::add_gate(CellKind kind, std::string name,
                         std::vector<NetId> ins, Phase phase) {
  const NetId out = add_net(name);
  return add_cell(kind, std::move(name), std::move(ins), out, phase);
}

CellId Netlist::add_input(std::string name) {
  const NetId out = add_net(name);
  const CellId id = add_cell(CellKind::kInput, std::move(name), {}, out);
  inputs_.push_back(id);
  return id;
}

CellId Netlist::add_output(std::string name, NetId src) {
  const CellId id =
      add_cell(CellKind::kOutput, std::move(name), {src}, NetId{});
  outputs_.push_back(id);
  return id;
}

void Netlist::replace_input(CellId cell_id, std::uint32_t pin, NetId net) {
  Cell& cell = cells_[cell_id.value()];
  require(pin < cell.ins.size(), "replace_input: pin out of range");
  const NetId old = cell.ins[pin];
  if (old == net) return;
  auto& old_fanouts = nets_[old.value()].fanouts;
  std::erase(old_fanouts, PinRef{cell_id, pin});
  cell.ins[pin] = net;
  nets_[net.value()].fanouts.push_back({cell_id, pin});
  touch(cell_id);
  touch(old);
  touch(net);
}

void Netlist::transfer_fanouts(NetId from, NetId to) {
  require(from != to, "transfer_fanouts: from == to");
  // Copy first: replace_input mutates the fanout vector we iterate.
  const std::vector<PinRef> fanouts = nets_[from.value()].fanouts;
  for (const PinRef& ref : fanouts) replace_input(ref.cell, ref.pin, to);
}

void Netlist::remove_cell(CellId cell_id) {
  Cell& cell = cells_[cell_id.value()];
  require(cell.alive, "remove_cell: already dead");
  touch(cell_id);
  for (std::uint32_t pin = 0; pin < cell.ins.size(); ++pin) {
    touch(cell.ins[pin]);
    std::erase(nets_[cell.ins[pin].value()].fanouts, PinRef{cell_id, pin});
  }
  cell.ins.clear();
  if (cell.out.valid()) {
    touch(cell.out);
    nets_[cell.out.value()].driver = CellId{};
    cell.out = NetId{};
  }
  cell.alive = false;
  reset_of_.erase(cell_id.value());
}

void Netlist::remove_net(NetId net_id) {
  Net& net = nets_[net_id.value()];
  require(net.alive, "remove_net: already dead");
  require(!net.driver.valid() && net.fanouts.empty(),
          "remove_net: net still connected");
  net.alive = false;
  touch(net_id);
}

void Netlist::morph_cell(CellId cell_id, CellKind kind) {
  Cell& cell = cells_[cell_id.value()];
  require(num_inputs(kind) == static_cast<int>(cell.ins.size()),
          "morph_cell: input count mismatch");
  cell.kind = kind;
  if (cell.out.valid() && is_clock_cell(kind)) {
    nets_[cell.out.value()].is_clock = true;
  }
  touch(cell_id);
  if (cell.out.valid()) touch(cell.out);
}

void Netlist::morph_cell(CellId cell_id, CellKind kind,
                         std::vector<NetId> ins) {
  Cell& cell = cells_[cell_id.value()];
  for (std::uint32_t pin = 0; pin < cell.ins.size(); ++pin) {
    touch(cell.ins[pin]);
    std::erase(nets_[cell.ins[pin].value()].fanouts, PinRef{cell_id, pin});
  }
  require(static_cast<int>(ins.size()) == num_inputs(kind),
          "morph_cell: wrong input count");
  cell.ins = std::move(ins);
  cell.kind = kind;
  for (std::uint32_t pin = 0; pin < cell.ins.size(); ++pin) {
    touch(cell.ins[pin]);
    nets_[cell.ins[pin].value()].fanouts.push_back({cell_id, pin});
  }
  if (cell.out.valid() && is_clock_cell(kind)) {
    nets_[cell.out.value()].is_clock = true;
  }
  touch(cell_id);
  if (cell.out.valid()) touch(cell.out);
}

void Netlist::set_phase(CellId cell_id, Phase phase) {
  cells_[cell_id.value()].phase = phase;
  touch(cell_id);
}

void Netlist::set_init(CellId cell_id, bool init) {
  cells_[cell_id.value()].init = init ? 1 : 0;
  touch(cell_id);
}

void Netlist::mark_clock_net(NetId net, bool is_clock) {
  nets_[net.value()].is_clock = is_clock;
  touch(net);
}

std::vector<CellId> Netlist::data_inputs() const {
  std::vector<CellId> result;
  for (CellId id : inputs_) {
    const Cell& c = cell(id);
    if (c.alive && !nets_[c.out.value()].is_clock) result.push_back(id);
  }
  return result;
}

std::vector<CellId> Netlist::live_cells() const {
  std::vector<CellId> result;
  result.reserve(cells_.size());
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].alive) result.push_back(CellId{i});
  }
  return result;
}

std::vector<CellId> Netlist::registers() const {
  std::vector<CellId> result;
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].alive && is_register(cells_[i].kind)) {
      result.push_back(CellId{i});
    }
  }
  return result;
}

void Netlist::set_clock_root(CellId input_cell, Phase phase) {
  const Cell& c = cell(input_cell);
  require(c.kind == CellKind::kInput, "set_clock_root: not an input cell");
  nets_[c.out.value()].is_clock = true;
  cells_[input_cell.value()].phase = phase;
  touch(input_cell);
  touch(c.out);
}

void Netlist::declare_reset_root(CellId input_cell, bool active_low,
                                 int release_order) {
  const Cell& c = cell(input_cell);
  require(c.kind == CellKind::kInput,
          "declare_reset_root: not an input cell");
  for (const ResetRoot& root : reset_roots_) {
    require(root.net != c.out, "declare_reset_root: already declared");
  }
  reset_roots_.push_back({c.out, active_low, release_order});
  touch(input_cell);
  touch(c.out);
}

void Netlist::set_reset(CellId reg, NetId reset_net) {
  require(is_register(cell(reg).kind), "set_reset: not a register");
  reset_of_[reg.value()] = reset_net;
  touch(reg);
}

NetId Netlist::reset_of(CellId reg) const {
  const auto it = reset_of_.find(reg.value());
  return it == reset_of_.end() ? NetId{} : it->second;
}

TouchedSet Netlist::take_touched() { return take_touched(journal_cursor_); }

TouchedSet Netlist::take_touched(JournalCursor& cursor) const {
  TouchedSet touched;
  touched.cells.assign(
      touched_cells_.begin() + static_cast<std::ptrdiff_t>(cursor.cells),
      touched_cells_.end());
  touched.nets.assign(
      touched_nets_.begin() + static_cast<std::ptrdiff_t>(cursor.nets),
      touched_nets_.end());
  cursor.cells = touched_cells_.size();
  cursor.nets = touched_nets_.size();
  const auto canonicalize = [](auto& ids) {
    std::sort(ids.begin(), ids.end(),
              [](auto a, auto b) { return a.value() < b.value(); });
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  };
  canonicalize(touched.cells);
  canonicalize(touched.nets);
  return touched;
}

CellId insert_latch_after(Netlist& netlist, NetId q, NetId gate_root,
                          Phase phase, const std::string& name) {
  const NetId q2 = netlist.add_net(name);
  netlist.transfer_fanouts(q, q2);
  return netlist.add_cell(CellKind::kLatchH, name, {q, gate_root}, q2,
                          phase);
}

void Netlist::validate() const {
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    const Cell& c = cells_[i];
    if (!c.alive) continue;
    require(static_cast<int>(c.ins.size()) == num_inputs(c.kind),
            cat("validate: cell ", c.name, " pin count"));
    for (std::uint32_t pin = 0; pin < c.ins.size(); ++pin) {
      const Net& net = nets_[c.ins[pin].value()];
      require(net.alive, cat("validate: cell ", c.name, " uses dead net"));
      const bool listed =
          std::find(net.fanouts.begin(), net.fanouts.end(),
                    PinRef{CellId{i}, pin}) != net.fanouts.end();
      require(listed, cat("validate: cell ", c.name, " pin ", pin,
                          " not in fanout list of net ", net.name));
    }
    if (c.out.valid()) {
      require(nets_[c.out.value()].driver == CellId{i},
              cat("validate: cell ", c.name, " output driver mismatch"));
    }
  }
  for (std::uint32_t i = 0; i < nets_.size(); ++i) {
    const Net& net = nets_[i];
    if (!net.alive) continue;
    if (net.driver.valid()) {
      const Cell& d = cells_[net.driver.value()];
      require(d.alive && d.out == NetId{i},
              cat("validate: net ", net.name, " driver inconsistent"));
    }
    for (const PinRef& ref : net.fanouts) {
      const Cell& c = cells_[ref.cell.value()];
      require(c.alive && ref.pin < c.ins.size() &&
                  c.ins[ref.pin] == NetId{i},
              cat("validate: net ", net.name, " fanout inconsistent"));
    }
  }
}

}  // namespace tp
