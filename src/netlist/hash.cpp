#include "src/netlist/hash.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/util/hash.hpp"

namespace tp {
namespace {

using util::fnv1a;
using util::hash_combine;
using util::splitmix64;

std::uint64_t net_name_hash(const Netlist& netlist, NetId net) {
  if (!net.valid()) return splitmix64(0x6e6f6e65);  // "none"
  return fnv1a(netlist.net(net).name);
}

std::uint64_t cell_record_hash(const Netlist& netlist, const Cell& cell) {
  std::uint64_t h = fnv1a(cell_kind_name(cell.kind));
  h = hash_combine(h, static_cast<std::uint64_t>(cell.phase));
  h = hash_combine(h, cell.init);
  h = hash_combine(h, fnv1a(cell.name));
  h = hash_combine(h, net_name_hash(netlist, cell.out));
  for (const NetId in : cell.ins) {
    h = hash_combine(h, net_name_hash(netlist, in));
  }
  return h;
}

}  // namespace

std::uint64_t netlist_hash(const Netlist& netlist) {
  // Commutative fold over live cells: insertion order must not matter.
  std::uint64_t sum = 0;
  std::uint64_t xored = 0;
  std::uint64_t live = 0;
  for (const CellId id : netlist.live_cells()) {
    const std::uint64_t record =
        splitmix64(cell_record_hash(netlist, netlist.cell(id)));
    sum += record;
    xored ^= record;
    ++live;
  }
  std::uint64_t h = hash_combine(hash_combine(sum, xored), live);

  // Ordered parts: the PI/PO registration order defines the stimulus and
  // output-stream layout, so it is content.
  for (const CellId id : netlist.inputs()) {
    h = hash_combine(h, fnv1a(netlist.cell(id).name));
  }
  for (const CellId id : netlist.outputs()) {
    h = hash_combine(h, fnv1a(netlist.cell(id).name));
  }

  const ClockSpec& clocks = netlist.clocks();
  h = hash_combine(h, static_cast<std::uint64_t>(clocks.period_ps));
  for (const PhaseWaveform& wave : clocks.phases) {
    h = hash_combine(h, static_cast<std::uint64_t>(wave.phase));
    h = hash_combine(h, net_name_hash(netlist, wave.root));
    h = hash_combine(h, static_cast<std::uint64_t>(wave.rise_ps));
    h = hash_combine(h, static_cast<std::uint64_t>(wave.fall_ps));
  }

  // Reset metadata is folded only when declared so that reset-free designs
  // (everything the flow produced before A6 existed) keep their historical
  // hashes — the serve cache keys on this value.
  if (!netlist.reset_roots().empty()) {
    for (const ResetRoot& root : netlist.reset_roots()) {
      h = hash_combine(h, net_name_hash(netlist, root.net));
      h = hash_combine(h, static_cast<std::uint64_t>(root.active_low));
      h = hash_combine(h, static_cast<std::uint64_t>(root.release_order));
    }
    std::vector<std::pair<std::uint32_t, NetId>> assigned(
        netlist.reset_assignments().begin(),
        netlist.reset_assignments().end());
    std::sort(assigned.begin(), assigned.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [reg, net] : assigned) {
      h = hash_combine(h, fnv1a(netlist.cell(CellId{reg}).name));
      h = hash_combine(h, net_name_hash(netlist, net));
    }
  }
  return splitmix64(h);
}

}  // namespace tp
