// Netlist traversal: combinational levelization and the register-to-register
// connectivity graph that feeds the phase-assignment ILP.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace tp {

/// Topological levels of all live cells. Roots (level 0): primary inputs,
/// constants, and register outputs. Combinational cells (including clock
/// buffers and stateless ICGs) get max(input levels) + 1. Registers and ICGs
/// with state are barriers: their own level is 0 regardless of input levels.
/// Throws tp::Error on a combinational cycle.
struct Levelization {
  /// level[cell id] — -1 for dead cells.
  std::vector<int> level;
  /// Live combinational cells in topological (level) order.
  std::vector<CellId> comb_order;
  int max_level = 0;
};

Levelization levelize(const Netlist& netlist);

/// The FF/latch connectivity graph of Sec. IV-A: node u is a register,
/// FO(u) is the set of registers reachable from u's output through
/// combinational logic only (clock cells are not traversed). Primary data
/// inputs are tracked separately: pi_fanout[i] lists the registers reachable
/// from data input i, used for the ILP's PI constraints.
struct RegisterGraph {
  std::vector<CellId> regs;                 // node index -> register cell
  std::unordered_map<std::uint32_t, int> node_of;  // cell id -> node index
  std::vector<std::vector<int>> fanout;     // deduplicated FF->FF edges
  std::vector<CellId> data_pis;             // data primary inputs
  std::vector<std::vector<int>> pi_fanout;  // per data PI -> register nodes

  [[nodiscard]] int node(CellId reg) const {
    const auto it = node_of.find(reg.value());
    require(it != node_of.end(), "RegisterGraph::node: not a register");
    return it->second;
  }

  /// True when node u has itself in FO(u) (FF with combinational feedback).
  [[nodiscard]] bool has_self_loop(int u) const;

  [[nodiscard]] std::size_t num_edges() const;
};

RegisterGraph build_register_graph(const Netlist& netlist);

/// For every ICG cell: the registers (and data PIs, reported as kInput
/// cells) that have a combinational path to its enable pin. Used by the M2
/// legality analysis ("EN has no start point latched by the same phase",
/// Sec. IV-D).
std::unordered_map<std::uint32_t, std::vector<CellId>> icg_enable_sources(
    const Netlist& netlist);

/// Reset-state values of every net: registers at their init value, primary
/// inputs low, clocks parked at their end-of-cycle levels (transparent
/// latches evaluated to fixpoint). `overrides` pins selected nets to fixed
/// values — retiming uses this to evaluate cut nets as functions of the
/// bypassed latches' original init values.
std::vector<std::uint8_t> reset_net_values(
    const Netlist& netlist,
    const std::unordered_map<std::uint32_t, std::uint8_t>* overrides =
        nullptr);

/// Registers (and data PIs) with a combinational path into `pin` of `cell`.
std::vector<CellId> pin_fanin_sources(const Netlist& netlist, CellId cell,
                                      std::uint32_t pin);

/// Registers (and data PIs) with a combinational path to `net`.
std::vector<CellId> pin_fanin_sources_of_net(const Netlist& netlist,
                                             NetId net);

}  // namespace tp
