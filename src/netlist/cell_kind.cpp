#include "src/netlist/cell_kind.hpp"

#include "src/util/log.hpp"

namespace tp {

std::string_view cell_kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kInput: return "INPUT";
    case CellKind::kOutput: return "OUTPUT";
    case CellKind::kConst0: return "CONST0";
    case CellKind::kConst1: return "CONST1";
    case CellKind::kBuf: return "BUF";
    case CellKind::kInv: return "INV";
    case CellKind::kAnd2: return "AND2";
    case CellKind::kAnd3: return "AND3";
    case CellKind::kOr2: return "OR2";
    case CellKind::kOr3: return "OR3";
    case CellKind::kNand2: return "NAND2";
    case CellKind::kNand3: return "NAND3";
    case CellKind::kNor2: return "NOR2";
    case CellKind::kNor3: return "NOR3";
    case CellKind::kXor2: return "XOR2";
    case CellKind::kXnor2: return "XNOR2";
    case CellKind::kMux2: return "MUX2";
    case CellKind::kAoi21: return "AOI21";
    case CellKind::kOai21: return "OAI21";
    case CellKind::kMaj3: return "MAJ3";
    case CellKind::kDff: return "DFF";
    case CellKind::kDffEn: return "DFFEN";
    case CellKind::kLatchH: return "LATCHH";
    case CellKind::kLatchL: return "LATCHL";
    case CellKind::kLatchP: return "LATCHP";
    case CellKind::kIcg: return "ICG";
    case CellKind::kIcgM1: return "ICGM1";
    case CellKind::kIcgNoLatch: return "ICGNL";
    case CellKind::kClkBuf: return "CLKBUF";
    case CellKind::kClkInv: return "CLKINV";
    case CellKind::kDffDet: return "DFFDET";
    case CellKind::kClkDiv2: return "CLKDIV2";
  }
  return "?";
}

int num_inputs(CellKind kind) {
  switch (kind) {
    case CellKind::kInput:
    case CellKind::kConst0:
    case CellKind::kConst1:
      return 0;
    case CellKind::kOutput:
    case CellKind::kBuf:
    case CellKind::kInv:
    case CellKind::kClkBuf:
    case CellKind::kClkInv:
    case CellKind::kClkDiv2:
      return 1;
    case CellKind::kAnd2:
    case CellKind::kOr2:
    case CellKind::kNand2:
    case CellKind::kNor2:
    case CellKind::kXor2:
    case CellKind::kXnor2:
    case CellKind::kDff:
    case CellKind::kDffDet:
    case CellKind::kLatchH:
    case CellKind::kLatchL:
    case CellKind::kLatchP:
    case CellKind::kIcg:
    case CellKind::kIcgNoLatch:
      return 2;
    case CellKind::kAnd3:
    case CellKind::kOr3:
    case CellKind::kNand3:
    case CellKind::kNor3:
    case CellKind::kMux2:
    case CellKind::kAoi21:
    case CellKind::kOai21:
    case CellKind::kMaj3:
    case CellKind::kDffEn:
    case CellKind::kIcgM1:
      return 3;
  }
  return 0;
}

bool has_output(CellKind kind) { return kind != CellKind::kOutput; }

bool is_combinational(CellKind kind) {
  switch (kind) {
    case CellKind::kBuf:
    case CellKind::kInv:
    case CellKind::kAnd2:
    case CellKind::kAnd3:
    case CellKind::kOr2:
    case CellKind::kOr3:
    case CellKind::kNand2:
    case CellKind::kNand3:
    case CellKind::kNor2:
    case CellKind::kNor3:
    case CellKind::kXor2:
    case CellKind::kXnor2:
    case CellKind::kMux2:
    case CellKind::kAoi21:
    case CellKind::kOai21:
    case CellKind::kMaj3:
    case CellKind::kIcgNoLatch:
    case CellKind::kClkBuf:
    case CellKind::kClkInv:
      return true;
    default:
      return false;
  }
}

bool is_register(CellKind kind) {
  return kind == CellKind::kDff || kind == CellKind::kDffEn ||
         kind == CellKind::kDffDet || kind == CellKind::kLatchH ||
         kind == CellKind::kLatchL || kind == CellKind::kLatchP;
}

bool is_flip_flop(CellKind kind) {
  return kind == CellKind::kDff || kind == CellKind::kDffEn ||
         kind == CellKind::kDffDet;
}

bool samples_on_edge(CellKind kind) {
  return is_flip_flop(kind) || kind == CellKind::kLatchP;
}

bool is_latch(CellKind kind) {
  return kind == CellKind::kLatchH || kind == CellKind::kLatchL;
}

bool is_icg(CellKind kind) {
  return kind == CellKind::kIcg || kind == CellKind::kIcgM1 ||
         kind == CellKind::kIcgNoLatch;
}

bool is_clock_cell(CellKind kind) {
  return is_icg(kind) || kind == CellKind::kClkBuf ||
         kind == CellKind::kClkInv || kind == CellKind::kClkDiv2;
}

int clock_pin(CellKind kind) {
  switch (kind) {
    case CellKind::kDff:
    case CellKind::kDffDet:
    case CellKind::kLatchH:
    case CellKind::kLatchL:
    case CellKind::kLatchP:
    case CellKind::kIcg:
    case CellKind::kIcgM1:
    case CellKind::kIcgNoLatch:
      return 1;
    case CellKind::kDffEn:
      return 2;
    case CellKind::kClkBuf:
    case CellKind::kClkInv:
    case CellKind::kClkDiv2:
      return 0;
    default:
      return -1;
  }
}

bool eval_comb(CellKind kind, std::span<const bool> ins) {
  switch (kind) {
    case CellKind::kBuf: return ins[0];
    case CellKind::kInv: return !ins[0];
    case CellKind::kAnd2: return ins[0] && ins[1];
    case CellKind::kAnd3: return ins[0] && ins[1] && ins[2];
    case CellKind::kOr2: return ins[0] || ins[1];
    case CellKind::kOr3: return ins[0] || ins[1] || ins[2];
    case CellKind::kNand2: return !(ins[0] && ins[1]);
    case CellKind::kNand3: return !(ins[0] && ins[1] && ins[2]);
    case CellKind::kNor2: return !(ins[0] || ins[1]);
    case CellKind::kNor3: return !(ins[0] || ins[1] || ins[2]);
    case CellKind::kXor2: return ins[0] != ins[1];
    case CellKind::kXnor2: return ins[0] == ins[1];
    case CellKind::kMux2: return ins[2] ? ins[1] : ins[0];
    case CellKind::kAoi21: return !((ins[0] && ins[1]) || ins[2]);
    case CellKind::kOai21: return !((ins[0] || ins[1]) && ins[2]);
    case CellKind::kMaj3:
      return (ins[0] && ins[1]) || (ins[0] && ins[2]) || (ins[1] && ins[2]);
    case CellKind::kIcgNoLatch: return ins[0] && ins[1];
    case CellKind::kClkBuf: return ins[0];
    case CellKind::kClkInv: return !ins[0];
    default:
      throw Error("eval_comb: kind is not combinational");
  }
}

std::uint64_t eval_comb_word(CellKind kind,
                             std::span<const std::uint64_t> ins) {
  switch (kind) {
    case CellKind::kBuf: return ins[0];
    case CellKind::kInv: return ~ins[0];
    case CellKind::kAnd2: return ins[0] & ins[1];
    case CellKind::kAnd3: return ins[0] & ins[1] & ins[2];
    case CellKind::kOr2: return ins[0] | ins[1];
    case CellKind::kOr3: return ins[0] | ins[1] | ins[2];
    case CellKind::kNand2: return ~(ins[0] & ins[1]);
    case CellKind::kNand3: return ~(ins[0] & ins[1] & ins[2]);
    case CellKind::kNor2: return ~(ins[0] | ins[1]);
    case CellKind::kNor3: return ~(ins[0] | ins[1] | ins[2]);
    case CellKind::kXor2: return ins[0] ^ ins[1];
    case CellKind::kXnor2: return ~(ins[0] ^ ins[1]);
    case CellKind::kMux2: return (ins[2] & ins[1]) | (~ins[2] & ins[0]);
    case CellKind::kAoi21: return ~((ins[0] & ins[1]) | ins[2]);
    case CellKind::kOai21: return ~((ins[0] | ins[1]) & ins[2]);
    case CellKind::kMaj3:
      return (ins[0] & ins[1]) | (ins[0] & ins[2]) | (ins[1] & ins[2]);
    case CellKind::kIcgNoLatch: return ins[0] & ins[1];
    case CellKind::kClkBuf: return ins[0];
    case CellKind::kClkInv: return ~ins[0];
    default:
      throw Error("eval_comb_word: kind is not combinational");
  }
}

}  // namespace tp
