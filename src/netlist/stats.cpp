#include "src/netlist/stats.hpp"

#include <ostream>
#include <sstream>

#include "src/util/strcat.hpp"

namespace tp {

NetlistStats compute_stats(const Netlist& netlist) {
  NetlistStats stats;
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    ++stats.cells_by_kind[static_cast<std::size_t>(cell.kind)];
    ++stats.live_cells;
    if (is_register(cell.kind)) {
      ++stats.registers;
      ++stats.registers_by_phase[static_cast<std::size_t>(cell.phase)];
    } else if (is_clock_cell(cell.kind)) {
      ++stats.clock_cells;
    } else if (is_combinational(cell.kind)) {
      ++stats.combinational;
    }
  }
  std::uint64_t fanout_sum = 0;
  std::uint64_t fanout_nets = 0;
  for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(NetId{n});
    if (!net.alive) continue;
    ++stats.live_nets;
    if (net.driver.valid()) {
      fanout_sum += net.fanouts.size();
      ++fanout_nets;
      stats.max_fanout =
          std::max(stats.max_fanout, static_cast<int>(net.fanouts.size()));
    }
  }
  stats.avg_fanout = fanout_nets == 0
                         ? 0.0
                         : static_cast<double>(fanout_sum) /
                               static_cast<double>(fanout_nets);
  stats.max_logic_depth = levelize(netlist).max_level;

  const RegisterGraph graph = build_register_graph(netlist);
  stats.ff_graph_edges = static_cast<int>(graph.num_edges());
  for (std::size_t u = 0; u < graph.regs.size(); ++u) {
    stats.ff_self_loops += graph.has_self_loop(static_cast<int>(u));
  }
  stats.avg_ff_fanout =
      graph.regs.empty()
          ? 0.0
          : static_cast<double>(graph.num_edges()) /
                static_cast<double>(graph.regs.size());
  return stats;
}

std::string format_stats(const NetlistStats& stats) {
  std::ostringstream os;
  os << "cells " << stats.live_cells << " (comb " << stats.combinational
     << ", registers " << stats.registers << ", clock "
     << stats.clock_cells << "), nets " << stats.live_nets << "\n";
  os << "registers by phase:";
  for (const Phase phase : {Phase::kNone, Phase::kClk, Phase::kClkBar,
                            Phase::kP1, Phase::kP2, Phase::kP3}) {
    const int count =
        stats.registers_by_phase[static_cast<std::size_t>(phase)];
    if (count) os << ' ' << phase_name(phase) << '=' << count;
  }
  os << "\nlogic depth " << stats.max_logic_depth << ", avg fanout "
     << stats.avg_fanout << ", max fanout " << stats.max_fanout << "\n";
  os << "FF graph: " << stats.ff_graph_edges << " edges, "
     << stats.ff_self_loops << " self-loops, avg fanout "
     << stats.avg_ff_fanout << "\n";
  return os.str();
}

namespace {

const char* phase_color(Phase phase) {
  switch (phase) {
    case Phase::kP1: return "lightblue";
    case Phase::kP2: return "khaki";       // the paper draws p2 in yellow
    case Phase::kP3: return "lightgreen";
    case Phase::kClk: return "lightgrey";
    case Phase::kClkBar: return "grey";
    case Phase::kNone: return "white";
  }
  return "white";
}

}  // namespace

void write_dot(const Netlist& netlist, std::ostream& out) {
  out << "digraph \"" << netlist.name() << "\" {\n  rankdir=LR;\n";
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    const char* shape = is_register(cell.kind)     ? "box"
                        : is_clock_cell(cell.kind) ? "diamond"
                        : cell.kind == CellKind::kInput ||
                                cell.kind == CellKind::kOutput
                            ? "plaintext"
                            : "ellipse";
    out << "  c" << id.value() << " [label=\"" << cell.name << "\\n"
        << cell_kind_name(cell.kind) << "\" shape=" << shape
        << " style=filled fillcolor=" << phase_color(cell.phase) << "];\n";
  }
  for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(NetId{n});
    if (!net.alive || !net.driver.valid()) continue;
    for (const PinRef& ref : net.fanouts) {
      out << "  c" << net.driver.value() << " -> c" << ref.cell.value();
      if (net.is_clock) out << " [style=dashed color=gray]";
      out << ";\n";
    }
  }
  out << "}\n";
}

void write_register_graph_dot(const Netlist& netlist, std::ostream& out) {
  const RegisterGraph graph = build_register_graph(netlist);
  out << "digraph \"" << netlist.name() << "_regs\" {\n";
  for (std::size_t u = 0; u < graph.regs.size(); ++u) {
    const Cell& cell = netlist.cell(graph.regs[u]);
    out << "  r" << u << " [label=\"" << cell.name
        << "\" shape=box style=filled fillcolor="
        << phase_color(cell.phase) << "];\n";
  }
  for (std::size_t u = 0; u < graph.regs.size(); ++u) {
    for (const int v : graph.fanout[u]) {
      out << "  r" << u << " -> r" << v << ";\n";
    }
  }
  out << "}\n";
}

}  // namespace tp
