// Gate-level netlist: cells, nets, clock phases.
//
// A Netlist is a flat single-module gate-level design. Cells are typed by
// CellKind (see cell_kind.hpp); every cell has positional input nets and at
// most one output net. Nets record their driver and full fanout (cell, pin)
// list so transformations can rewire in O(degree).
//
// Clocking: clock phases are modeled explicitly. Each phase has a root net
// driven by a kInput pseudo-cell; gated-clock logic (ICGs, clock buffers) is
// instantiated on the netlist like any other cell, so the simulator, the
// clock-tree model, and the power engine all see the real clock network.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/netlist/cell_kind.hpp"
#include "src/util/ids.hpp"
#include "src/util/log.hpp"

namespace tp {

/// Clock phase tag. A flip-flop design uses kClk; the intermediate retiming
/// netlist uses kClk/kClkBar; a 3-phase design uses kP1/kP2/kP3.
enum class Phase : std::uint8_t { kNone, kClk, kClkBar, kP1, kP2, kP3 };

std::string_view phase_name(Phase phase);

/// One phase of the clock: a root net plus its rise/fall times inside the
/// common cycle (times in picoseconds, 0 <= rise < fall <= period is not
/// required: a waveform may also wrap, but all waveforms in this project use
/// rise < fall <= period).
struct PhaseWaveform {
  Phase phase = Phase::kNone;
  NetId root;
  std::int64_t rise_ps = 0;
  std::int64_t fall_ps = 0;
};

/// The design's clocking plan: a common period and one waveform per phase.
struct ClockSpec {
  std::int64_t period_ps = 0;
  std::vector<PhaseWaveform> phases;

  [[nodiscard]] const PhaseWaveform* find(Phase phase) const;
  [[nodiscard]] NetId root(Phase phase) const;
};

/// Returns the canonical waveforms used throughout the project:
///  - single-phase FF clock: high [0, T/2)
///  - clk/clkbar (retiming intermediate): clk high [0, T/2), clkbar [T/2, T)
///  - 3-phase: p1 high [0, T/3), p2 [T/3, 2T/3), p3 [2T/3, T)
/// (Phase closing edges e1 <= e2 <= e3 = Tc as in the SMO model, Sec. II.)
ClockSpec single_phase_spec(std::int64_t period_ps, NetId clk_root);
ClockSpec two_phase_spec(std::int64_t period_ps, NetId clk_root,
                         NetId clkbar_root);
ClockSpec three_phase_spec(std::int64_t period_ps, NetId p1_root,
                           NetId p2_root, NetId p3_root);

/// A (cell, input-pin) endpoint; element of a net's fanout list.
struct PinRef {
  CellId cell;
  std::uint32_t pin = 0;

  friend bool operator==(const PinRef&, const PinRef&) = default;
};

struct Cell {
  CellKind kind = CellKind::kBuf;
  std::string name;
  std::vector<NetId> ins;
  NetId out;
  /// For registers and clock cells: which phase the cell's clock pin belongs
  /// to. Kept redundantly with the clock network so that transforms can
  /// reason about phases without tracing the clock tree each time.
  Phase phase = Phase::kNone;
  /// Reset value of the stored state (registers only). Forward retiming
  /// recomputes this for moved latches — the state encoding changes.
  std::uint8_t init = 0;
  bool alive = true;
};

struct Net {
  std::string name;
  CellId driver;
  std::vector<PinRef> fanouts;
  /// True for nets on the clock network (phase roots, ICG/clock-buffer
  /// outputs). Set by add_cell for clock cells and by mark_clock_net.
  bool is_clock = false;
  bool alive = true;
};

/// A declared asynchronous reset root (metadata — the model has no reset
/// pins; register reset state lives in Cell::init). `release_order` ranks
/// de-assertion time across roots: a larger value is released later. The
/// reset-domain analysis (A6, src/analysis/domains.cpp) flags data paths
/// from a root released no earlier than the destination's.
struct ResetRoot {
  NetId net;
  bool active_low = true;
  int release_order = 0;
};

/// Cell and net ids touched by netlist mutations since the journal was
/// last drained; feeds the incremental AnalysisSession's and
/// IncrementalTimer's dirty cones.
struct TouchedSet {
  std::vector<CellId> cells;
  std::vector<NetId> nets;

  [[nodiscard]] bool empty() const { return cells.empty() && nets.empty(); }
};

/// A read position into the append-only mutation journal. Every consumer
/// (AnalysisSession, IncrementalTimer, ...) owns one cursor and drains
/// independently: one consumer reading never starves another.
struct JournalCursor {
  std::size_t cells = 0;
  std::size_t nets = 0;
};

class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- construction -------------------------------------------------------

  NetId add_net(std::string name);

  /// Adds a cell. `ins` must match num_inputs(kind); `out` must be a valid
  /// net with no existing driver (or invalid for kOutput). Fanout lists are
  /// maintained automatically.
  CellId add_cell(CellKind kind, std::string name, std::vector<NetId> ins,
                  NetId out, Phase phase = Phase::kNone);

  /// Convenience: creates the output net "<name>" and the cell driving it.
  CellId add_gate(CellKind kind, std::string name, std::vector<NetId> ins,
                  Phase phase = Phase::kNone);

  /// Registers a primary input/output. PIs are kInput cells, POs kOutput
  /// cells; the registration order defines the stimulus/response ordering.
  CellId add_input(std::string name);
  CellId add_output(std::string name, NetId src);

  // --- mutation (used by the conversion transforms) ------------------------

  /// Reconnects input pin `pin` of `cell` to `net`, updating fanout lists.
  void replace_input(CellId cell, std::uint32_t pin, NetId net);

  /// Moves every fanout of `from` onto `to` (i.e. "to replaces from" as the
  /// signal consumers see it). `from` keeps its driver.
  void transfer_fanouts(NetId from, NetId to);

  /// Deletes a cell: detaches all pins, frees its output net's driver slot.
  /// The cell id becomes dead (alive == false); ids are never reused.
  void remove_cell(CellId cell);

  /// Deletes a dead net (no driver and no fanouts required).
  void remove_net(NetId net);

  /// Changes a cell's kind. The new kind must have the same number of input
  /// pins unless new input nets are supplied.
  void morph_cell(CellId cell, CellKind kind);
  void morph_cell(CellId cell, CellKind kind, std::vector<NetId> ins);

  void set_phase(CellId cell, Phase phase);
  void set_init(CellId cell, bool init);
  void mark_clock_net(NetId net, bool is_clock = true);

  // --- access --------------------------------------------------------------

  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }
  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }

  [[nodiscard]] const Cell& cell(CellId id) const {
    return cells_[id.value()];
  }
  [[nodiscard]] const Net& net(NetId id) const { return nets_[id.value()]; }

  [[nodiscard]] const std::vector<CellId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<CellId>& outputs() const {
    return outputs_;
  }

  /// Data (non-clock) primary inputs, in registration order.
  [[nodiscard]] std::vector<CellId> data_inputs() const;

  [[nodiscard]] ClockSpec& clocks() { return clocks_; }
  [[nodiscard]] const ClockSpec& clocks() const { return clocks_; }

  /// Ids of all live cells / registers, in id order.
  [[nodiscard]] std::vector<CellId> live_cells() const;
  [[nodiscard]] std::vector<CellId> registers() const;

  /// Number of live cells satisfying a kind predicate.
  template <class Pred>
  [[nodiscard]] std::size_t count_cells(Pred pred) const {
    std::size_t n = 0;
    for (const auto& c : cells_) {
      if (c.alive && pred(c.kind)) ++n;
    }
    return n;
  }

  /// Throws tp::Error when the netlist is structurally inconsistent:
  /// dangling pins, multiply-driven nets, fanout-list mismatches, or pin
  /// counts disagreeing with the cell kind.
  void validate() const;

  /// Declares a clock root: marks the input cell's net as a clock and tags
  /// the phase. The cell must be a kInput.
  void set_clock_root(CellId input_cell, Phase phase);

  // --- reset metadata ------------------------------------------------------

  /// Declares an async reset root on a kInput cell's net. Pure metadata:
  /// the net carries no simulated reset waveform and registers have no
  /// reset pin — only the domain analysis (A6) consumes it.
  void declare_reset_root(CellId input_cell, bool active_low,
                          int release_order);

  /// Associates a register with a declared reset root's net (or any net
  /// that buffers/inverts one). Overwrites a previous association.
  void set_reset(CellId reg, NetId reset_net);

  /// The reset net associated with `reg`, or an invalid NetId.
  [[nodiscard]] NetId reset_of(CellId reg) const;

  [[nodiscard]] const std::vector<ResetRoot>& reset_roots() const {
    return reset_roots_;
  }
  /// Sparse register -> reset-net map (cell id value keyed). Iteration
  /// order is unspecified; sort by key for deterministic output.
  [[nodiscard]] const std::unordered_map<std::uint32_t, NetId>&
  reset_assignments() const {
    return reset_of_;
  }

  // --- mutation journal ----------------------------------------------------

  /// Starts recording the cell/net ids every mutator touches. Off by
  /// default (zero overhead for construction-heavy code paths).
  void enable_journal() { journal_enabled_ = true; }
  [[nodiscard]] bool journal_enabled() const { return journal_enabled_; }

  /// Drains the journal through the built-in cursor: returns everything
  /// touched since the last take_touched() call (sorted, deduplicated).
  TouchedSet take_touched();

  /// Multi-consumer drain: returns everything appended since `cursor` was
  /// last advanced (sorted, deduplicated) and moves the cursor to the end
  /// of the log. Cursors from different consumers are independent.
  TouchedSet take_touched(JournalCursor& cursor) const;

  /// A cursor at the current end of the journal: an immediate drain
  /// through it returns nothing.
  [[nodiscard]] JournalCursor journal_cursor() const {
    return {touched_cells_.size(), touched_nets_.size()};
  }

 private:
  void touch(CellId cell) {
    if (journal_enabled_) touched_cells_.push_back(cell);
  }
  void touch(NetId net) {
    if (journal_enabled_) touched_nets_.push_back(net);
  }

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<CellId> inputs_;
  std::vector<CellId> outputs_;
  ClockSpec clocks_;
  std::vector<ResetRoot> reset_roots_;
  std::unordered_map<std::uint32_t, NetId> reset_of_;
  bool journal_enabled_ = false;
  // Append-only while the journal is enabled; consumers track positions
  // with JournalCursors (take_touched() uses the built-in one).
  std::vector<CellId> touched_cells_;
  std::vector<NetId> touched_nets_;
  JournalCursor journal_cursor_;
};

/// Inserts a transparent-high latch on phase `phase` at net `q`: all
/// existing fanouts of `q` move to the latch output. Returns the new latch.
CellId insert_latch_after(Netlist& netlist, NetId q, NetId gate_root,
                          Phase phase, const std::string& name);

}  // namespace tp
