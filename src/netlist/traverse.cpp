#include "src/netlist/traverse.hpp"

#include <algorithm>
#include "src/util/strcat.hpp"

namespace tp {
namespace {

/// True for cells that data traversal may pass through: plain combinational
/// gates that are not part of the clock network.
bool is_data_comb(const Cell& cell) {
  return is_combinational(cell.kind) && !is_clock_cell(cell.kind);
}

}  // namespace

Levelization levelize(const Netlist& netlist) {
  Levelization result;
  result.level.assign(netlist.num_cells(), -1);

  // Kahn's algorithm over the combinational subgraph. Sequential cells and
  // stateful ICGs are barriers (level 0 sources via their outputs).
  std::vector<int> pending(netlist.num_cells(), 0);
  std::vector<CellId> ready;
  std::size_t num_comb = 0;

  for (CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (is_combinational(cell.kind)) {
      ++num_comb;
      int deps = 0;
      for (NetId in : cell.ins) {
        const CellId driver = netlist.net(in).driver;
        if (driver.valid() &&
            is_combinational(netlist.cell(driver).kind)) {
          ++deps;
        }
      }
      pending[id.value()] = deps;
      if (deps == 0) ready.push_back(id);
    } else {
      result.level[id.value()] = 0;
    }
  }

  while (!ready.empty()) {
    const CellId id = ready.back();
    ready.pop_back();
    const Cell& cell = netlist.cell(id);
    int level = 0;
    for (NetId in : cell.ins) {
      const CellId driver = netlist.net(in).driver;
      if (driver.valid()) level = std::max(level, result.level[driver.value()]);
    }
    result.level[id.value()] = level + 1;
    result.max_level = std::max(result.max_level, level + 1);
    result.comb_order.push_back(id);
    if (cell.out.valid()) {
      for (const PinRef& ref : netlist.net(cell.out).fanouts) {
        const Cell& sink = netlist.cell(ref.cell);
        if (is_combinational(sink.kind) && --pending[ref.cell.value()] == 0) {
          ready.push_back(ref.cell);
        }
      }
    }
  }

  require(result.comb_order.size() == num_comb,
          cat("levelize: combinational cycle (", result.comb_order.size(),
              " of ", num_comb, " cells ordered)"));
  // comb_order was produced by a stack; re-sort by level for deterministic
  // in-level ordering.
  std::stable_sort(result.comb_order.begin(), result.comb_order.end(),
                   [&](CellId a, CellId b) {
                     return result.level[a.value()] < result.level[b.value()];
                   });
  return result;
}

namespace {

/// Forward BFS from `source_net` through data combinational cells; calls
/// `on_reg(reg_cell)` for every register whose D (or DFFEN enable) pin is
/// reached. `epoch`/`mark` implement O(1) reset between sources.
template <class OnReg>
void forward_to_registers(const Netlist& netlist, NetId source_net,
                          std::vector<std::uint32_t>& mark,
                          std::uint32_t epoch, std::vector<NetId>& stack,
                          OnReg&& on_reg) {
  stack.clear();
  stack.push_back(source_net);
  mark[source_net.value()] = epoch;
  while (!stack.empty()) {
    const NetId net_id = stack.back();
    stack.pop_back();
    for (const PinRef& ref : netlist.net(net_id).fanouts) {
      const Cell& sink = netlist.cell(ref.cell);
      if (!sink.alive) continue;
      if (is_register(sink.kind)) {
        // D pin of any register, or EN pin of a DFFEN, is a sampled data
        // input; the clock/gate pin is not a data edge.
        if (static_cast<int>(ref.pin) != clock_pin(sink.kind)) {
          on_reg(ref.cell);
        }
      } else if (is_data_comb(sink) && sink.out.valid() &&
                 mark[sink.out.value()] != epoch) {
        mark[sink.out.value()] = epoch;
        stack.push_back(sink.out);
      }
    }
  }
}

}  // namespace

bool RegisterGraph::has_self_loop(int u) const {
  return std::find(fanout[u].begin(), fanout[u].end(), u) !=
         fanout[u].end();
}

std::size_t RegisterGraph::num_edges() const {
  std::size_t n = 0;
  for (const auto& f : fanout) n += f.size();
  return n;
}

RegisterGraph build_register_graph(const Netlist& netlist) {
  RegisterGraph graph;
  graph.regs = netlist.registers();
  for (int i = 0; i < static_cast<int>(graph.regs.size()); ++i) {
    graph.node_of.emplace(graph.regs[i].value(), i);
  }
  graph.fanout.resize(graph.regs.size());
  graph.data_pis = netlist.data_inputs();
  graph.pi_fanout.resize(graph.data_pis.size());

  std::vector<std::uint32_t> mark(netlist.num_nets(), 0);
  std::vector<NetId> stack;
  std::uint32_t epoch = 0;

  auto collect = [&](NetId source, std::vector<int>& out) {
    ++epoch;
    forward_to_registers(netlist, source, mark, epoch, stack,
                         [&](CellId reg) {
                           out.push_back(graph.node_of.at(reg.value()));
                         });
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  };

  for (int u = 0; u < static_cast<int>(graph.regs.size()); ++u) {
    collect(netlist.cell(graph.regs[u]).out, graph.fanout[u]);
  }
  for (std::size_t i = 0; i < graph.data_pis.size(); ++i) {
    collect(netlist.cell(graph.data_pis[i]).out, graph.pi_fanout[i]);
  }
  return graph;
}

std::vector<std::uint8_t> reset_net_values(
    const Netlist& netlist,
    const std::unordered_map<std::uint32_t, std::uint8_t>* overrides) {
  // Reset ("parked") state: every clock phase sits at its value just before
  // the cycle boundary (t = Tc - 1), so e.g. masters (transparent-low) and
  // p3 latches are transparent and show their data cones, while closed
  // latches and flip-flops hold their init values. Evaluated to fixpoint;
  // legal designs never have two adjacent transparent latches, so the
  // iteration converges in a few passes.
  std::vector<std::uint8_t> value(netlist.num_nets(), 0);
  const ClockSpec& clocks = netlist.clocks();
  for (const CellId id : netlist.live_cells()) {
    const Cell& cell = netlist.cell(id);
    if (!cell.out.valid()) continue;
    if (cell.kind == CellKind::kConst1) value[cell.out.value()] = 1;
    if (is_register(cell.kind)) value[cell.out.value()] = cell.init;
    if (cell.kind == CellKind::kInput && netlist.net(cell.out).is_clock &&
        clocks.period_ps > 0) {
      if (const PhaseWaveform* w = clocks.find(cell.phase)) {
        const std::int64_t t = clocks.period_ps - 1;
        const std::int64_t rise = w->rise_ps % clocks.period_ps;
        const std::int64_t fall = w->fall_ps % clocks.period_ps;
        const bool level =
            rise <= fall ? (rise <= t && t < fall) : (t >= rise || t < fall);
        value[cell.out.value()] = level ? 1 : 0;
      }
    }
  }
  auto apply_overrides = [&] {
    if (!overrides) return;
    for (const auto& [net, v] : *overrides) value[net] = v;
  };
  apply_overrides();
  const Levelization lev = levelize(netlist);
  bool ins[3] = {};
  for (int pass = 0; pass < 16; ++pass) {
    bool changed = false;
    auto write = [&](NetId net, bool v) {
      if (overrides && overrides->count(net.value())) return;  // pinned
      if ((value[net.value()] != 0) != v) {
        value[net.value()] = v ? 1 : 0;
        changed = true;
      }
    };
    for (const CellId id : lev.comb_order) {
      const Cell& cell = netlist.cell(id);
      if (!cell.out.valid()) continue;
      for (std::size_t i = 0; i < cell.ins.size(); ++i) {
        ins[i] = value[cell.ins[i].value()] != 0;
      }
      if (cell.kind == CellKind::kIcgNoLatch || !is_clock_cell(cell.kind)) {
        write(cell.out,
              eval_comb(cell.kind,
                        std::span<const bool>(ins, cell.ins.size())));
      }
    }
    for (const CellId id : netlist.live_cells()) {
      const Cell& cell = netlist.cell(id);
      if (!cell.out.valid()) continue;
      if (is_icg(cell.kind) && cell.kind != CellKind::kIcgNoLatch) {
        // The internal enable latch tracked EN while every clock was low
        // before parking, so its frozen value is the settled enable.
        write(cell.out, value[cell.ins[0].value()] != 0 &&
                            value[cell.ins[1].value()] != 0);
      } else if (is_latch(cell.kind)) {
        const bool gate = value[cell.ins[1].value()] != 0;
        const bool transparent =
            cell.kind == CellKind::kLatchH ? gate : !gate;
        if (transparent) write(cell.out, value[cell.ins[0].value()] != 0);
      }
    }
    if (!changed) break;
  }
  return value;
}

std::vector<CellId> pin_fanin_sources(const Netlist& netlist, CellId cell,
                                      std::uint32_t pin) {
  return pin_fanin_sources_of_net(netlist, netlist.cell(cell).ins[pin]);
}

std::vector<CellId> pin_fanin_sources_of_net(const Netlist& netlist,
                                             NetId net) {
  // Reverse BFS from the net through data combinational cells to register
  // outputs and primary inputs.
  std::vector<CellId> sources;
  std::vector<bool> seen(netlist.num_nets(), false);
  std::vector<NetId> stack{net};
  seen[stack.back().value()] = true;
  while (!stack.empty()) {
    const NetId net_id = stack.back();
    stack.pop_back();
    const CellId driver_id = netlist.net(net_id).driver;
    if (!driver_id.valid()) continue;
    const Cell& driver = netlist.cell(driver_id);
    if (is_register(driver.kind) || driver.kind == CellKind::kInput) {
      sources.push_back(driver_id);
    } else if (is_data_comb(driver)) {
      for (NetId in : driver.ins) {
        if (!seen[in.value()]) {
          seen[in.value()] = true;
          stack.push_back(in);
        }
      }
    }
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return sources;
}

std::unordered_map<std::uint32_t, std::vector<CellId>> icg_enable_sources(
    const Netlist& netlist) {
  std::unordered_map<std::uint32_t, std::vector<CellId>> result;
  for (CellId id : netlist.live_cells()) {
    if (is_icg(netlist.cell(id).kind)) {
      result.emplace(id.value(), pin_fanin_sources(netlist, id, 0));
    }
  }
  return result;
}

}  // namespace tp
