// Canonical netlist content hash.
//
// netlist_hash() fingerprints a design's structure — cells with their
// kinds, phases, init values and net connectivity, the PI/PO interface
// order, and the clock spec — such that two netlists describing the same
// design hash equal regardless of the order cells and nets were inserted.
// Cells reference nets by *name* (names are the stable identity; ids
// encode insertion history), per-cell records are hashed independently,
// and the records are folded with commutative accumulators (sum and xor)
// before a final avalanche mix. Dead cells and nets are excluded, so a
// remove_cell() round trip does not change the hash.
//
// This is the content-addressing root of the serve cache
// (src/serve/cache.hpp): a cache key embeds netlist_hash(benchmark), so
// any change to a benchmark generator automatically invalidates every
// cached result computed from the old structure. The design name is
// deliberately excluded — identical structures under different names are
// the same content.
#pragma once

#include <cstdint>

#include "src/netlist/netlist.hpp"

namespace tp {

std::uint64_t netlist_hash(const Netlist& netlist);

}  // namespace tp
