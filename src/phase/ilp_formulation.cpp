#include "src/phase/ilp_formulation.hpp"

#include "src/ilp/solver.hpp"
#include "src/util/strcat.hpp"

namespace tp {

PhaseIlp build_phase_ilp(const RegisterGraph& graph) {
  PhaseIlp ilp;
  const std::size_t n = graph.regs.size();
  ilp.k_vars.reserve(n);
  ilp.g_vars.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    ilp.k_vars.push_back(ilp.model.add_binary(cat("K_", u), 0.0));
    ilp.g_vars.push_back(ilp.model.add_binary(cat("G_", u), 1.0));
  }
  for (std::size_t p = 0; p < graph.data_pis.size(); ++p) {
    ilp.pi_g_vars.push_back(ilp.model.add_binary(cat("Gpi_", p), 1.0));
  }

  for (std::size_t u = 0; u < n; ++u) {
    // G(u) + K(u) >= 1: a p3 latch is always back-to-back.
    ilp.model.add_constraint(cat("b2b_", u),
                             {{ilp.g_vars[u], 1.0}, {ilp.k_vars[u], 1.0}},
                             ilp::Sense::kGe, 1.0);
    // G(u) - K(u) - K(v) >= -1: consecutive p1 latches force insertion.
    for (const int v : graph.fanout[u]) {
      if (static_cast<std::size_t>(v) == u) {
        // Self-loop: G(u) - 2 K(u) >= -1.
        ilp.model.add_constraint(
            cat("self_", u), {{ilp.g_vars[u], 1.0}, {ilp.k_vars[u], -2.0}},
            ilp::Sense::kGe, -1.0);
      } else {
        ilp.model.add_constraint(cat("edge_", u, "_", v),
                                 {{ilp.g_vars[u], 1.0},
                                  {ilp.k_vars[u], -1.0},
                                  {ilp.k_vars[static_cast<std::size_t>(v)],
                                   -1.0}},
                                 ilp::Sense::kGe, -1.0);
      }
    }
  }
  // G(p) >= K(v) for every data PI p and FF v in its fanout.
  for (std::size_t p = 0; p < graph.data_pis.size(); ++p) {
    for (const int v : graph.pi_fanout[p]) {
      ilp.model.add_constraint(
          cat("pi_", p, "_", v),
          {{ilp.pi_g_vars[p], 1.0},
           {ilp.k_vars[static_cast<std::size_t>(v)], -1.0}},
          ilp::Sense::kGe, 0.0);
    }
  }
  return ilp;
}

PhaseAssignment decode_phase_ilp(const RegisterGraph& graph,
                                 const PhaseIlp& ilp,
                                 const std::vector<std::uint8_t>& values,
                                 bool optimal) {
  std::vector<std::uint8_t> k(graph.regs.size());
  for (std::size_t u = 0; u < k.size(); ++u) {
    k[u] = values[ilp.k_vars[u].value()];
  }
  PhaseAssignment a = assignment_from_k(graph, std::move(k));
  a.optimal = optimal;
  return a;
}

PhaseAssignment assign_phases_ilp(const RegisterGraph& graph,
                                  double time_limit_s) {
  const PhaseIlp ilp = build_phase_ilp(graph);
  ilp::SolveOptions options;
  options.time_limit_s = time_limit_s;
  const ilp::Solution solution = ilp::solve(ilp.model, options);
  if (solution.status == ilp::SolveStatus::kOptimal ||
      solution.status == ilp::SolveStatus::kFeasible) {
    return decode_phase_ilp(graph, ilp, solution.values,
                            solution.status == ilp::SolveStatus::kOptimal);
  }
  // The ILP is always feasible (K = 0 everywhere); reaching here means the
  // limits were too tight to even complete the first dive. Fall back to the
  // trivial all-p3 assignment.
  log_warn("assign_phases_ilp: solver hit limits before first incumbent");
  return assignment_from_k(graph,
                           std::vector<std::uint8_t>(graph.regs.size(), 0));
}

}  // namespace tp
