#include "src/phase/assignment.hpp"

#include <numeric>

#include "src/util/strcat.hpp"

namespace tp {

int PhaseAssignment::num_inserted() const {
  return std::accumulate(g.begin(), g.end(), 0) +
         std::accumulate(pi_g.begin(), pi_g.end(), 0);
}

int PhaseAssignment::total_latches(const RegisterGraph& graph) const {
  return static_cast<int>(graph.regs.size()) + num_inserted();
}

void validate_assignment(const RegisterGraph& graph,
                         const PhaseAssignment& assignment) {
  const std::size_t n = graph.regs.size();
  require(assignment.k.size() == n && assignment.g.size() == n,
          "validate_assignment: size mismatch");
  require(assignment.pi_g.size() == graph.data_pis.size(),
          "validate_assignment: PI size mismatch");
  for (std::size_t u = 0; u < n; ++u) {
    if (!assignment.k[u]) {
      require(assignment.g[u] == 1,
              cat("validate_assignment: p3 node ", u,
                  " must be back-to-back"));
    }
    if (assignment.k[u] && !assignment.g[u]) {
      for (const int v : graph.fanout[u]) {
        require(!assignment.k[v] || assignment.g[u],
                cat("validate_assignment: consecutive p1 latches ", u,
                    " -> ", v));
      }
    }
  }
  for (std::size_t p = 0; p < graph.data_pis.size(); ++p) {
    if (assignment.pi_g[p]) continue;
    for (const int v : graph.pi_fanout[p]) {
      require(!assignment.k[v],
              cat("validate_assignment: PI ", p,
                  " feeds p1 latch ", v, " without an inserted p2 latch"));
    }
  }
}

PhaseAssignment assignment_from_k(const RegisterGraph& graph,
                                  std::vector<std::uint8_t> k) {
  PhaseAssignment a;
  const std::size_t n = graph.regs.size();
  require(k.size() == n, "assignment_from_k: size mismatch");
  a.k = std::move(k);
  a.g.assign(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    if (!a.k[u]) {
      a.g[u] = 1;
      continue;
    }
    for (const int v : graph.fanout[u]) {
      if (a.k[v]) {
        a.g[u] = 1;
        break;
      }
    }
  }
  a.pi_g.assign(graph.data_pis.size(), 0);
  for (std::size_t p = 0; p < graph.data_pis.size(); ++p) {
    for (const int v : graph.pi_fanout[p]) {
      if (a.k[v]) {
        a.pi_g[p] = 1;
        break;
      }
    }
  }
  return a;
}

PhaseAssignment assign_phases(const RegisterGraph& graph,
                              const AssignOptions& options) {
  switch (options.method) {
    case AssignMethod::kIlp:
      return assign_phases_ilp(graph, options.time_limit_s);
    case AssignMethod::kSpecialized:
      return assign_phases_specialized(graph, options.time_limit_s);
    case AssignMethod::kGreedy:
      return assign_phases_greedy(graph);
  }
  throw Error("assign_phases: unknown method");
}

}  // namespace tp
