// Greedy phase-assignment baseline (used by the ILP-vs-greedy ablation).
//
// Scans FFs in ascending conflict-degree order and makes each one a single
// p1 latch whenever that is legal (no self-loop, no already-chosen conflict
// neighbor) and its marginal objective gain is positive (+1 latch saved,
// minus any newly-incurred PI insertion).
#include <algorithm>
#include <numeric>

#include "src/phase/assignment.hpp"

namespace tp {

PhaseAssignment assign_phases_greedy(const RegisterGraph& graph) {
  const std::size_t n = graph.regs.size();
  std::vector<std::vector<int>> adj(n);
  std::vector<std::uint8_t> self_loop(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (const int v : graph.fanout[u]) {
      if (static_cast<std::size_t>(v) == u) {
        self_loop[u] = 1;
      } else {
        adj[u].push_back(v);
        adj[static_cast<std::size_t>(v)].push_back(static_cast<int>(u));
      }
    }
  }
  std::vector<std::vector<int>> node_pis(n);
  for (std::size_t p = 0; p < graph.data_pis.size(); ++p) {
    for (const int v : graph.pi_fanout[p]) {
      node_pis[static_cast<std::size_t>(v)].push_back(static_cast<int>(p));
    }
  }

  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto da = adj[static_cast<std::size_t>(a)].size();
    const auto db = adj[static_cast<std::size_t>(b)].size();
    return da != db ? da < db : a < b;
  });

  std::vector<std::uint8_t> in_s(n, 0);
  std::vector<int> pi_touched(graph.data_pis.size(), 0);
  for (const int u : order) {
    const auto su = static_cast<std::size_t>(u);
    if (self_loop[su]) continue;
    bool blocked = false;
    for (const int v : adj[su]) {
      if (in_s[static_cast<std::size_t>(v)]) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    int gain = 1;
    for (const int p : node_pis[su]) {
      if (pi_touched[static_cast<std::size_t>(p)] == 0) --gain;
    }
    if (gain <= 0) continue;
    in_s[su] = 1;
    for (const int p : node_pis[su]) {
      ++pi_touched[static_cast<std::size_t>(p)];
    }
  }
  PhaseAssignment a = assignment_from_k(graph, std::move(in_s));
  a.optimal = false;
  return a;
}

}  // namespace tp
