#include "src/phase/schedule.hpp"

namespace tp {

void apply_phase_schedule(Netlist& netlist, std::int64_t e1_ps,
                          std::int64_t e2_ps) {
  ClockSpec& clocks = netlist.clocks();
  require(clocks.phases.size() == 3,
          "apply_phase_schedule: not a 3-phase design");
  require(0 < e1_ps && e1_ps < e2_ps && e2_ps < clocks.period_ps,
          "apply_phase_schedule: need 0 < e1 < e2 < Tc");
  for (PhaseWaveform& w : clocks.phases) {
    switch (w.phase) {
      case Phase::kP1:
        w.rise_ps = 0;
        w.fall_ps = e1_ps;
        break;
      case Phase::kP2:
        w.rise_ps = e1_ps;
        w.fall_ps = e2_ps;
        break;
      case Phase::kP3:
        w.rise_ps = e2_ps;
        w.fall_ps = clocks.period_ps;
        break;
      default:
        throw Error("apply_phase_schedule: unexpected phase");
    }
  }
}

ScheduleExploration explore_phase_schedule(const Netlist& netlist,
                                           const CellLibrary& library,
                                           int grid_steps,
                                           const TimingOptions& options) {
  require(grid_steps >= 3, "explore_phase_schedule: grid too coarse");
  ScheduleExploration exploration;
  Netlist probe = netlist;
  const std::int64_t period = netlist.clocks().period_ps;
  const std::int64_t step = period / grid_steps;

  // One engine serves the whole grid: only the clock plan changes between
  // samples, so the levelization, register list, and net loads are built
  // once and reused (the same probe pattern as find_min_period).
  SmoEngine engine(library, options, /*track_borrow=*/false);
  bool first = true;
  auto sample = [&](std::int64_t e1, std::int64_t e2) {
    apply_phase_schedule(probe, e1, e2);
    engine.run_full(probe, /*setup_only=*/true, /*reuse_structure=*/!first);
    first = false;
    const TimingReport& report = engine.report();
    ScheduleSample s;
    s.e1_ps = e1;
    s.e2_ps = e2;
    s.worst_setup_slack_ps =
        report.converged ? report.worst_setup_slack_ps : -1e9;
    s.setup_ok = report.converged && report.setup_ok;
    return s;
  };

  bool have_best = false;
  for (std::int64_t e1 = step; e1 < period - step; e1 += step) {
    for (std::int64_t e2 = e1 + step; e2 < period; e2 += step) {
      const ScheduleSample s = sample(e1, e2);
      exploration.samples.push_back(s);
      if (!have_best ||
          s.worst_setup_slack_ps > exploration.best.worst_setup_slack_ps) {
        exploration.best = s;
        have_best = true;
      }
    }
  }
  exploration.uniform = sample(period / 3, 2 * period / 3);
  // Uniform thirds participate in the comparison too.
  if (!have_best || exploration.uniform.worst_setup_slack_ps >
                        exploration.best.worst_setup_slack_ps) {
    exploration.best = exploration.uniform;
  }
  // Min period at the winning schedule (edges scale with the period inside
  // find_min_period, so the relative split is preserved).
  apply_phase_schedule(probe, exploration.best.e1_ps, exploration.best.e2_ps);
  exploration.min_period =
      find_min_period(probe, library, period / 4, 2 * period, 5, options);
  return exploration;
}

}  // namespace tp
