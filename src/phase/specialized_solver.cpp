// Specialized exact solver for the phase-assignment ILP.
//
// Canonical-form reduction (proof sketch): in an optimal solution it never
// helps to set K(u) = 1 for a node that still ends up back-to-back — flipping
// such a node to K(u) = 0 keeps its own cost and can only relax its
// predecessors' and PIs' constraints. Hence the optimum is characterized by
// the set S of single-latch nodes (K = indicator of S, G = 1 - indicator):
//
//   maximize  |S| - |{ p in PI : FO(p) intersects S }|
//   subject to S independent in the undirected conflict graph
//              (u-v for every FF edge u->v) and S avoiding self-loop nodes.
//
// This file solves that maximum-independent-set variant exactly via
// reductions (self-loop removal, isolated inclusion, degree-1 folding),
// connected-component decomposition, and per-component branch and bound with
// a greedy incumbent. When a component exceeds the time budget the greedy
// solution is kept and the result is marked non-optimal.
#include <algorithm>
#include <numeric>

#include "src/phase/assignment.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"

namespace tp {
namespace {

struct ConflictGraph {
  std::vector<std::vector<int>> adj;      // undirected, deduplicated
  std::vector<std::uint8_t> self_loop;    // node excluded from S
  std::vector<std::vector<int>> node_pis; // PIs covering each node
  int num_pis = 0;
};

ConflictGraph build_conflict_graph(const RegisterGraph& graph) {
  ConflictGraph cg;
  const std::size_t n = graph.regs.size();
  cg.adj.resize(n);
  cg.self_loop.assign(n, 0);
  cg.node_pis.resize(n);
  cg.num_pis = static_cast<int>(graph.data_pis.size());
  for (std::size_t u = 0; u < n; ++u) {
    for (const int v : graph.fanout[u]) {
      if (static_cast<std::size_t>(v) == u) {
        cg.self_loop[u] = 1;
      } else {
        cg.adj[u].push_back(v);
        cg.adj[static_cast<std::size_t>(v)].push_back(static_cast<int>(u));
      }
    }
  }
  for (auto& a : cg.adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  for (int p = 0; p < cg.num_pis; ++p) {
    for (const int v : graph.pi_fanout[static_cast<std::size_t>(p)]) {
      cg.node_pis[static_cast<std::size_t>(v)].push_back(p);
    }
  }
  return cg;
}

enum : std::int8_t { kUndecided = -1, kOut = 0, kIn = 1 };

/// Branch-and-bound over one connected component.
class ComponentSearch {
 public:
  ComponentSearch(const ConflictGraph& cg, std::vector<int> nodes,
                  std::vector<std::int8_t>& status, double deadline_s,
                  Stopwatch& timer)
      : cg_(cg),
        nodes_(std::move(nodes)),
        status_(status),
        deadline_s_(deadline_s),
        timer_(timer) {
    pi_local_count_.assign(static_cast<std::size_t>(cg.num_pis), 0);
    // Branch high-degree nodes first: they constrain the most.
    std::sort(nodes_.begin(), nodes_.end(), [&](int a, int b) {
      return cg_.adj[static_cast<std::size_t>(a)].size() >
             cg_.adj[static_cast<std::size_t>(b)].size();
    });
  }

  /// Runs the search; returns true when the component was solved to
  /// optimality. The best found membership is applied to `status_`.
  /// Components above this size skip the exact search: branch and bound
  /// cannot close such instances anyway, and the incumbent's local search is
  /// what determines quality there (mirrors commercial-solver time-outs).
  static constexpr std::size_t kExactLimit = 400;

  bool run() {
    build_incumbent();
    if (nodes_.size() > kExactLimit) {
      truncated_ = true;
    } else {
      dfs(0, 0, static_cast<int>(nodes_.size()));
    }
    // Apply the best assignment.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      status_[static_cast<std::size_t>(nodes_[i])] = best_assign_[i];
    }
    return !truncated_;
  }

 private:
  /// Marginal gain of adding u to S: +1 minus newly-touched PI penalties.
  int include_gain(int u) const {
    int gain = 1;
    for (const int p : cg_.node_pis[static_cast<std::size_t>(u)]) {
      if (pi_local_count_[static_cast<std::size_t>(p)] == 0) --gain;
    }
    return gain;
  }

  void do_include(int u) {
    status_[static_cast<std::size_t>(u)] = kIn;
    for (const int p : cg_.node_pis[static_cast<std::size_t>(u)]) {
      ++pi_local_count_[static_cast<std::size_t>(p)];
    }
  }

  void undo_include(int u) {
    status_[static_cast<std::size_t>(u)] = kUndecided;
    for (const int p : cg_.node_pis[static_cast<std::size_t>(u)]) {
      --pi_local_count_[static_cast<std::size_t>(p)];
    }
  }

  /// Greedy + local-search incumbent, computed on scratch state so the
  /// exact search starts from a clean all-undecided component.
  ///
  /// Greedy alone is weak on dense layered graphs (the crypto-pipeline
  /// shape), where the optimum selects alternate layers. The plateau-
  /// accepting (1,1)-swap walk — remove the single conflicting member, add
  /// the candidate, accept on non-negative delta — reliably drifts toward
  /// that structure.
  void build_incumbent() {
    Rng rng(0xC0FFEEULL ^ (nodes_.size() * 2654435761ULL));
    std::vector<std::uint8_t> in_s(status_.size(), 0);
    std::vector<int> pi_count(static_cast<std::size_t>(cg_.num_pis), 0);
    int gain = 0;

    auto marginal_gain = [&](int u) {
      int m = 1;
      for (const int p : cg_.node_pis[static_cast<std::size_t>(u)]) {
        if (pi_count[static_cast<std::size_t>(p)] == 0) --m;
      }
      return m;
    };
    auto removal_delta = [&](int u) {
      int d = -1;
      for (const int p : cg_.node_pis[static_cast<std::size_t>(u)]) {
        if (pi_count[static_cast<std::size_t>(p)] == 1) ++d;
      }
      return d;
    };
    auto add = [&](int u) {
      gain += marginal_gain(u);
      in_s[static_cast<std::size_t>(u)] = 1;
      for (const int p : cg_.node_pis[static_cast<std::size_t>(u)]) {
        ++pi_count[static_cast<std::size_t>(p)];
      }
    };
    auto remove = [&](int u) {
      gain += removal_delta(u);
      in_s[static_cast<std::size_t>(u)] = 0;
      for (const int p : cg_.node_pis[static_cast<std::size_t>(u)]) {
        --pi_count[static_cast<std::size_t>(p)];
      }
    };
    auto conflicts_of = [&](int u, int& the_one) {
      int count = 0;
      for (const int v : cg_.adj[static_cast<std::size_t>(u)]) {
        if (in_s[static_cast<std::size_t>(v)]) {
          ++count;
          the_one = v;
          if (count > 1) break;
        }
      }
      return count;
    };

    // Greedy seed, low-degree first.
    std::vector<int> order = nodes_;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return cg_.adj[static_cast<std::size_t>(a)].size() <
             cg_.adj[static_cast<std::size_t>(b)].size();
    });
    for (const int u : order) {
      if (cg_.self_loop[static_cast<std::size_t>(u)]) continue;
      int w = -1;
      if (conflicts_of(u, w) == 0 && marginal_gain(u) > 0) add(u);
    }

    // Plateau-accepting swap walk.
    const std::size_t iters =
        std::min<std::size_t>(400'000, 120 * nodes_.size());
    for (std::size_t it = 0; it < iters; ++it) {
      const int u = nodes_[rng.below(nodes_.size())];
      const auto su = static_cast<std::size_t>(u);
      if (cg_.self_loop[su]) continue;
      if (in_s[su]) {
        if (removal_delta(u) > 0) remove(u);
        continue;
      }
      int w = -1;
      const int conflicts = conflicts_of(u, w);
      if (conflicts == 0) {
        if (marginal_gain(u) >= 0) add(u);
      } else if (conflicts == 1) {
        // Tentative swap; revert on a strictly negative delta.
        const int before = gain;
        remove(w);
        add(u);
        if (gain < before) {
          remove(u);
          add(w);
        }
      }
    }

    // Record via the shared status_/record_best machinery.
    for (const int u : nodes_) {
      if (in_s[static_cast<std::size_t>(u)]) do_include(u);
    }
    record_best(gain);
    for (const int u : nodes_) {
      if (status_[static_cast<std::size_t>(u)] == kIn) undo_include(u);
      status_[static_cast<std::size_t>(u)] = kUndecided;
    }
  }

  void record_best(int gain) {
    if (gain <= best_gain_ && !best_assign_.empty()) return;
    best_gain_ = std::max(best_gain_, gain);
    best_assign_.resize(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      best_assign_[i] =
          status_[static_cast<std::size_t>(nodes_[i])] == kIn ? kIn : kOut;
    }
  }

  /// Per-component search budget: beyond this the incumbent is already the
  /// answer in practice and the proof is not worth the wall clock.
  static constexpr std::uint64_t kMaxSteps = 4'000'000;

  void dfs(std::size_t index, int gain, int undecided) {
    if (++steps_ > kMaxSteps ||
        ((steps_ & 2047) == 0 && timer_.seconds() > deadline_s_)) {
      truncated_ = true;
    }
    if (truncated_) return;
    // Skip already-decided nodes (excluded by a previous inclusion).
    while (index < nodes_.size() &&
           status_[static_cast<std::size_t>(nodes_[index])] != kUndecided) {
      ++index;
    }
    if (index == nodes_.size()) {
      record_best(gain);
      return;
    }
    if (gain + undecided <= best_gain_) return;  // optimistic bound

    const int u = nodes_[index];
    // Branch 1: include u (illegal for self-loop nodes).
    if (!cg_.self_loop[static_cast<std::size_t>(u)]) {
      bool blocked = false;
      for (const int v : cg_.adj[static_cast<std::size_t>(u)]) {
        if (status_[static_cast<std::size_t>(v)] == kIn) {
          blocked = true;
          break;
        }
      }
      if (!blocked) {
        const int marginal = include_gain(u);
        do_include(u);
        std::vector<int> newly_out;
        for (const int v : cg_.adj[static_cast<std::size_t>(u)]) {
          if (status_[static_cast<std::size_t>(v)] == kUndecided) {
            status_[static_cast<std::size_t>(v)] = kOut;
            newly_out.push_back(v);
          }
        }
        dfs(index + 1, gain + marginal,
            undecided - 1 - static_cast<int>(newly_out.size()));
        for (const int v : newly_out) {
          status_[static_cast<std::size_t>(v)] = kUndecided;
        }
        undo_include(u);
      }
    }
    // Branch 2: exclude u.
    status_[static_cast<std::size_t>(u)] = kOut;
    dfs(index + 1, gain, undecided - 1);
    status_[static_cast<std::size_t>(u)] = kUndecided;
  }

  const ConflictGraph& cg_;
  std::vector<int> nodes_;
  std::vector<std::int8_t>& status_;
  std::vector<int> pi_local_count_;
  double deadline_s_;
  Stopwatch& timer_;

  int best_gain_ = -1;
  std::vector<std::int8_t> best_assign_;
  std::uint64_t steps_ = 0;
  bool truncated_ = false;
};

}  // namespace

PhaseAssignment assign_phases_specialized(const RegisterGraph& graph,
                                          double time_limit_s) {
  const ConflictGraph cg = build_conflict_graph(graph);
  const std::size_t n = graph.regs.size();
  std::vector<std::int8_t> status(n, kUndecided);

  // Reduction: self-loop nodes can never be single latches.
  for (std::size_t u = 0; u < n; ++u) {
    if (cg.self_loop[u]) status[u] = kOut;
  }
  // Reduction: isolated nodes without PI coverage always join S. Degree-1
  // nodes without PI coverage fold their neighbor out (classic unit-weight
  // MIS argument: swapping the neighbor for the leaf never loses).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (status[u] != kUndecided || !cg.node_pis[u].empty() ||
          cg.self_loop[u]) {
        continue;
      }
      int undecided_neighbors = 0;
      int the_neighbor = -1;
      bool neighbor_in = false;
      for (const int v : cg.adj[u]) {
        if (status[static_cast<std::size_t>(v)] == kIn) neighbor_in = true;
        if (status[static_cast<std::size_t>(v)] == kUndecided) {
          ++undecided_neighbors;
          the_neighbor = v;
        }
      }
      if (neighbor_in) {
        status[u] = kOut;
        changed = true;
      } else if (undecided_neighbors == 0) {
        status[u] = kIn;  // isolated (all neighbors decided out)
        changed = true;
      } else if (undecided_neighbors == 1) {
        status[u] = kIn;
        status[static_cast<std::size_t>(the_neighbor)] = kOut;
        changed = true;
      }
    }
  }

  // Connected components over undecided nodes; PIs glue the nodes they
  // cover into one component (penalties couple their decisions).
  std::vector<int> component(n, -1);
  std::vector<std::vector<int>> components;
  std::vector<std::vector<int>> pi_nodes(static_cast<std::size_t>(cg.num_pis));
  for (std::size_t u = 0; u < n; ++u) {
    if (status[u] != kUndecided) continue;
    for (const int p : cg.node_pis[u]) {
      pi_nodes[static_cast<std::size_t>(p)].push_back(static_cast<int>(u));
    }
  }
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (status[seed] != kUndecided || component[seed] != -1) continue;
    std::vector<int> members;
    std::vector<int> stack{static_cast<int>(seed)};
    component[seed] = static_cast<int>(components.size());
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      members.push_back(u);
      auto visit = [&](int v) {
        if (status[static_cast<std::size_t>(v)] == kUndecided &&
            component[static_cast<std::size_t>(v)] == -1) {
          component[static_cast<std::size_t>(v)] =
              static_cast<int>(components.size());
          stack.push_back(v);
        }
      };
      for (const int v : cg.adj[static_cast<std::size_t>(u)]) visit(v);
      for (const int p : cg.node_pis[static_cast<std::size_t>(u)]) {
        for (const int v : pi_nodes[static_cast<std::size_t>(p)]) visit(v);
      }
    }
    components.push_back(std::move(members));
  }

  Stopwatch timer;
  bool optimal = true;
  for (auto& members : components) {
    ComponentSearch search(cg, std::move(members), status, time_limit_s,
                           timer);
    optimal &= search.run();
  }

  std::vector<std::uint8_t> k(n, 0);
  for (std::size_t u = 0; u < n; ++u) k[u] = (status[u] == kIn) ? 1 : 0;
  PhaseAssignment a = assignment_from_k(graph, std::move(k));
  a.optimal = optimal;
  return a;
}

}  // namespace tp
