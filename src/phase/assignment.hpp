// Phase assignment: the output of the paper's core optimization (Sec. IV-A).
//
// Every original flip-flop u receives two binary attributes:
//   K(u): 1 -> the latch at u's position is clocked by p1,
//         0 -> it is clocked by p3;
//   G(u): 1 -> u is in the back-to-back group (a p2 latch is inserted at the
//         latch's output), 0 -> u becomes a single p1 latch.
// Data primary inputs act as p1 sources (K = 1 by definition); G(pi) = 1
// means a p2 latch is inserted at the primary input's output.
//
// Legality (mirrors the ILP constraints):
//   - K(u) = 0 implies G(u) = 1              (p3 latches are back-to-back)
//   - K(u) = K(v) = 1, v in FO(u) implies G(u) = 1   (no consecutive
//     transparent p1 latches; this also covers self-loops)
//   - K(v) = 1 for v in FO(pi) implies G(pi) = 1     (interface rule)
#pragma once

#include <cstdint>
#include <vector>

#include "src/netlist/traverse.hpp"

namespace tp {

struct PhaseAssignment {
  std::vector<std::uint8_t> k;     // per RegisterGraph node
  std::vector<std::uint8_t> g;     // per RegisterGraph node
  std::vector<std::uint8_t> pi_g;  // per data PI
  /// True when the solver proved this assignment minimal.
  bool optimal = false;

  /// Number of inserted p2 latches = sum(g) + sum(pi_g), the ILP objective.
  [[nodiscard]] int num_inserted() const;

  /// Total latches in the converted design: one per original FF position
  /// plus the inserted p2 latches.
  [[nodiscard]] int total_latches(const RegisterGraph& graph) const;

  /// Latch phase for the register at node u (kP1 or kP3).
  [[nodiscard]] Phase position_phase(int u) const {
    return k[u] ? Phase::kP1 : Phase::kP3;
  }
};

/// Throws tp::Error when `assignment` violates any legality rule above.
void validate_assignment(const RegisterGraph& graph,
                         const PhaseAssignment& assignment);

/// Canonicalizes G from K (the cheapest G consistent with K) and returns the
/// objective. Used by the specialized solver and by tests.
PhaseAssignment assignment_from_k(const RegisterGraph& graph,
                                  std::vector<std::uint8_t> k);

enum class AssignMethod {
  kIlp,          // generic branch-and-bound over the paper's exact ILP
  kSpecialized,  // reduction to maximum independent set + dedicated search
  kGreedy,       // the heuristic baseline (ablation)
};

struct AssignOptions {
  AssignMethod method = AssignMethod::kSpecialized;
  double time_limit_s = 10.0;
};

/// Solves the phase-assignment problem for a register graph.
PhaseAssignment assign_phases(const RegisterGraph& graph,
                              const AssignOptions& options = {});

// Method-specific entry points (assign_phases dispatches to these).
PhaseAssignment assign_phases_ilp(const RegisterGraph& graph,
                                  double time_limit_s);
PhaseAssignment assign_phases_specialized(const RegisterGraph& graph,
                                          double time_limit_s);
PhaseAssignment assign_phases_greedy(const RegisterGraph& graph);

}  // namespace tp
