// Phase-schedule exploration (an extension rooted in the paper's SMO
// background, Sec. II).
//
// The conversion uses uniform thirds (e1 = Tc/3, e2 = 2Tc/3, e3 = Tc), but
// the SMO model only requires ordered closing edges. Skewing the splits
// re-apportions borrowing windows between the p1/p2/p3 segments — e.g. a
// design whose long paths sit after the p2 latches benefits from an early
// e2. This module sweeps (e1, e2), scores each schedule with the SMO STA,
// and can rewrite the clock plan to the best one found.
#pragma once

#include <vector>

#include "src/timing/incremental.hpp"
#include "src/timing/sta.hpp"

namespace tp {

struct ScheduleSample {
  std::int64_t e1_ps = 0;  // p1 closing edge
  std::int64_t e2_ps = 0;  // p2 closing edge (e3 = Tc)
  double worst_setup_slack_ps = 0;
  bool setup_ok = false;
};

struct ScheduleExploration {
  std::vector<ScheduleSample> samples;  // full grid, row-major in (e1, e2)
  ScheduleSample best;                  // max worst-slack sample
  ScheduleSample uniform;               // the Tc/3 reference point
  /// Min-period search at the best schedule over [Tc/4, 2*Tc]. Structured:
  /// `feasible == false` means no period in the bracket passes setup (a
  /// borrowing loop or an impossible schedule), which the old "hi + 1"
  /// sentinel could not distinguish from a legal period just above hi.
  MinPeriodResult min_period;
};

/// Sweeps e1 in (0, Tc), e2 in (e1, Tc) on a `grid_steps`-division grid.
/// The netlist must be a 3-phase design.
ScheduleExploration explore_phase_schedule(const Netlist& netlist,
                                           const CellLibrary& library,
                                           int grid_steps = 12,
                                           const TimingOptions& options = {});

/// Rewrites the netlist's clock plan to the given closing edges.
void apply_phase_schedule(Netlist& netlist, std::int64_t e1_ps,
                          std::int64_t e2_ps);

}  // namespace tp
