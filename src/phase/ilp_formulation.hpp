// The paper's exact ILP formulation (Sec. IV-A), in the Gurobi-compatible
// inequality form:
//
//   minimize   sum_u G(u)           (over FFs and data PIs)
//   subject to G(u) + K(u) >= 1                 for all u in V
//              G(u) - K(u) - K(v) >= -1         for all u in V, v in FO(u)
//              G(p) - K(v) >= 0                 for all p in PI, v in FO(p)
//
// All variables binary; PIs have no K variable (they are p1 by definition).
#pragma once

#include "src/ilp/model.hpp"
#include "src/phase/assignment.hpp"

namespace tp {

struct PhaseIlp {
  ilp::Model model;
  std::vector<VarId> k_vars;     // per register node
  std::vector<VarId> g_vars;     // per register node
  std::vector<VarId> pi_g_vars;  // per data PI
};

/// Builds the ILP for a register graph.
PhaseIlp build_phase_ilp(const RegisterGraph& graph);

/// Decodes an ILP solution vector into a PhaseAssignment (also canonicalizes
/// G downward where the solver left slack, which cannot increase the
/// objective).
PhaseAssignment decode_phase_ilp(const RegisterGraph& graph,
                                 const PhaseIlp& ilp,
                                 const std::vector<std::uint8_t>& values,
                                 bool optimal);

}  // namespace tp
