// Conversion backends: every design style run_flow() can produce, behind
// one interface.
//
// A backend owns the conversion segment of the flow — everything between
// the shared synthesis front-end (clock-gating inference + buffering) and
// the shared back-end (hold repair, STA, place, CTS, simulation, power).
// It declares its stable serialization token (CLIs, serve protocol, cache
// keys), the lint rules that encode its phase discipline, the sequencing
// cells it introduces, and a canonical seeded violation proving those
// rules actually catch its illegal forms.
//
// The registry is the single source of truth for style<->token mapping:
// style_from_name()/style_token() (serialize.hpp), the --backend/--style
// CLI flags, and the serve protocol's "backend" field all resolve through
// it, so adding a backend here makes it reachable from every surface.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "src/check/diagnostic.hpp"
#include "src/flow/flow.hpp"

namespace tp::flow {

/// What a backend's conversion pipeline reads and mutates: the working
/// netlist (FF form on entry, converted form on exit), the run's options
/// and result (for per-stage metrics and times), plus the flow's
/// checkpoint and activity hooks.
struct FlowContext {
  Netlist& netlist;
  const FlowOptions& options;
  const CellLibrary& library;
  FlowResult& result;
  /// Runs the stage hook and the opt-in SEC/lint checkpoints on the
  /// current working netlist under the given stage name.
  std::function<void(std::string_view)> checkpoint;
  /// Gate-level switching activity of the current working netlist under
  /// the run's stimulus lanes (the DDCG data dependence, Sec. V).
  std::function<ActivityStats()> activity;
};

class ConversionBackend {
 public:
  virtual ~ConversionBackend() = default;

  [[nodiscard]] virtual DesignStyle id() const = 0;
  /// Stable serialization tag ("ff", "ms", "3p", "pl", "2p", "det"): the
  /// spelling in CLI flags, serve-protocol jobs, result JSON, and cache
  /// keys. Never renamed once released.
  [[nodiscard]] virtual std::string_view token() const = 0;
  /// Short human label for tables ("FF", "3-P", ...).
  [[nodiscard]] virtual std::string_view display_name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;

  /// Runs the backend's conversion pipeline on ctx.netlist, including any
  /// style-specific retiming/gating stages, calling ctx.checkpoint after
  /// each stage and accounting wall-clock into ctx.result.times.
  virtual void convert(FlowContext& ctx) const = 0;

  /// The lint rules encoding this backend's phase discipline — what
  /// docs/backends.md lists and what the seeded-violation tests prove
  /// non-vacuous. run_checks() always evaluates the full registry; rules
  /// self-gate on the netlist features their discipline introduces.
  [[nodiscard]] virtual std::vector<check::RuleId> rule_set() const = 0;

  /// Sequencing / clock cell kinds the conversion introduces.
  [[nodiscard]] virtual std::vector<CellKind> cells() const = 0;

  /// Plants one canonical violation of this backend's discipline into a
  /// converted netlist and returns the rule expected to flag it. Powers
  /// the negative tests: every backend must detect its own planted
  /// illegality.
  virtual check::RuleId seed_violation(Netlist& netlist) const = 0;

  /// Plants an unsynchronized clock-domain crossing (a divided-clock
  /// source register combinationally merged into an existing register's
  /// data path) and returns check::RuleId::kCdcUnsync. The generic plant
  /// works on any converted netlist; backends with unusual sequencing
  /// override it.
  virtual check::RuleId seed_cdc_violation(Netlist& netlist) const;

  /// Plants a reset-domain crossing (two declared reset roots, the source
  /// register's root released after the destination's) and returns
  /// check::RuleId::kRdcCrossing.
  virtual check::RuleId seed_rdc_violation(Netlist& netlist) const;

  /// Extension point for backend-specific library adjustments (derating a
  /// cell, pricing a custom sequencing element). Default: no change.
  virtual void adjust_library(CellLibrary& library) const;
};

/// All registered backends, in DesignStyle order.
const std::vector<const ConversionBackend*>& backend_registry();

/// The backend implementing `style` (every enum value is registered).
const ConversionBackend& backend_for(DesignStyle style);

/// Token lookup ("ff", "ms", ...); nullptr for unknown tokens.
const ConversionBackend* find_backend(std::string_view token);

/// Comma-separated list of every registered token, for error messages.
std::string backend_token_list();

}  // namespace tp::flow
