// Deterministic serialization of flow results and options — the byte layer
// under the serving protocol and the content-addressed result cache.
//
// Three jobs:
//  - canonical short names for DesignStyle and presets, shared by the CLIs
//    and the protocol (previously each CLI hand-rolled its own table);
//  - options_fingerprint(): a canonical text rendering of every
//    result-affecting FlowOptions field, hashed into the cache key so two
//    requests share a cache entry iff their flows are configured
//    identically (wall-clock-only switches like `executor` are excluded);
//  - result_payload_json(): the JSON payload describing one MatrixResult.
//    Deterministic by construction — it contains no wall-clock fields and
//    is produced by the same JsonWriter code on every path, so a cache hit
//    serves bytes identical to a fresh recompute of the same request.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/flow/backend.hpp"
#include "src/flow/matrix.hpp"

namespace tp::flow {

/// Parses the short backend tokens used everywhere ("ff", "ms", "3p", "pl",
/// "2p", "det"). Resolved through the backend registry
/// (src/flow/backend.hpp), so new backends are parseable the moment they
/// are registered.
bool style_from_name(std::string_view text, DesignStyle* style);

/// Short backend token for the protocol/CLIs (ConversionBackend::token) —
/// style_name() returns the long human-readable form.
std::string_view style_token(DesignStyle style);

/// Parses a FlowOptions preset name: "paper", "fast", or "no-gating".
bool options_from_preset(std::string_view name, FlowOptions* options);

/// Parses a workload name as used by the CLIs/protocol.
bool workload_from_name(std::string_view text, circuits::Workload* workload);

/// Canonical text rendering of the result-affecting FlowOptions fields.
std::string options_fingerprint(const FlowOptions& options);

/// FNV-1a of options_fingerprint() — the options component of a cache key.
std::uint64_t options_hash(const FlowOptions& options);

/// JSON object describing one completed MatrixResult: identity (benchmark,
/// style, seed, lanes, cycles, workload), Table I/II metrics, structural
/// detail counts, the output-stream fingerprint, and check verdicts.
/// No timing/wall-clock fields — the payload is a pure function of the
/// deterministic flow outputs.
std::string result_payload_json(const RunPlan& plan,
                                const MatrixResult& result);

}  // namespace tp::flow
