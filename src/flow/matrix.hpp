// Parallel flow-matrix engine.
//
// The paper's evaluation (Tables I–III) and this repo's regression gates
// all sweep the same grid: benchmarks x design styles, each cell an
// independent run_flow() invocation. RunPlan describes such a grid once —
// benchmark names, styles, shared FlowOptions, workload, cycle count and a
// base stimulus seed — and run_matrix() executes every cell on a
// work-stealing Executor (src/util/executor.hpp).
//
// Determinism contract: results are bit-identical regardless of thread
// count or scheduling order. Each task derives its own stimulus seed with
// task_seed() (a pure function of the base seed, benchmark name, and
// style), builds its own Benchmark and Stimulus, and run_flow() itself
// only uses locally-seeded RNGs — so a 16-thread run, a 1-thread run, and
// the serial run_matrix(plan) overload produce identical FlowResults
// (metrics, netlists, output streams). Only the wall-clock StepTimes vary.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

namespace tp::util {
class Executor;
}  // namespace tp::util

namespace tp::flow {

/// One cell of the grid, in plan order (benchmark-major, style-minor):
/// index == benchmark_index * styles.size() + style_index.
struct MatrixTask {
  std::size_t index = 0;
  std::string benchmark;
  DesignStyle style = DesignStyle::kFlipFlop;
  std::uint64_t seed = 0;  // per-task stimulus seed (see task_seed)
};

/// Deterministic per-task stimulus seed: splitmix64 finalizer over the
/// base seed mixed with an FNV-1a hash of the benchmark name. Stable
/// across processes and platforms (no std::hash). Deliberately
/// style-independent: every style of one benchmark sees the same
/// stimulus, so output streams stay cross-comparable — the paper's
/// validation protocol streams identical inputs to the FF-based and
/// latch-based designs (Sec. V).
std::uint64_t task_seed(std::uint64_t base, std::string_view benchmark);

/// Deterministic per-lane stimulus seed for multi-lane tasks
/// (RunPlan::lanes >= 2). Lane 0 is the task seed itself, so a one-lane
/// plan is bit-identical to the pre-lane engine; further lanes get
/// splitmix64-mixed derivatives.
std::uint64_t lane_seed(std::uint64_t task_seed, std::size_t lane);

/// A benchmarks x styles grid sharing one FlowOptions / workload / cycle
/// count. Empty `benchmarks` means every built-in benchmark; `styles`
/// defaults to the paper's three compared designs.
struct RunPlan {
  std::vector<std::string> benchmarks;
  std::vector<DesignStyle> styles = {DesignStyle::kFlipFlop,
                                     DesignStyle::kMasterSlave,
                                     DesignStyle::kThreePhase};
  FlowOptions options;
  circuits::Workload workload = circuits::Workload::kPaperDefault;
  std::size_t cycles = 96;
  std::uint64_t stimulus_seed = 7;  // base seed; tasks derive their own
  /// Stimulus lanes per task, in [1, kMaxSimLanes]. With lanes >= 2 each
  /// task generates `lanes` independent stimuli (lane_seed) of
  /// ceil(cycles / lanes) cycles each and simulates them in one
  /// bit-parallel WideSimulator pass (FlowOptions::wide_sim permitting) —
  /// the cheap way to reach a cycle budget. Results stay deterministic
  /// across thread counts, but a 4-lane plan samples different stimuli
  /// than a 1-lane plan of the same seed, so lane count is part of the
  /// reproducibility key.
  std::size_t lanes = 1;

  /// Optional cooperative-cancellation flag (not owned). When it reads
  /// true, tasks that have not started yet fail fast with a "canceled"
  /// MatrixResult::error instead of running — already-running tasks finish
  /// normally, so a wave drains instead of aborting. The serve daemon and
  /// the CLIs wire their SIGINT/SIGTERM flag here.
  const std::atomic<bool>* cancel = nullptr;

  /// Expands the grid into per-task descriptors in plan order.
  [[nodiscard]] std::vector<MatrixTask> tasks() const;
};

struct MatrixResult {
  MatrixTask task;
  FlowResult result;
  double seconds = 0;  // wall-clock of this task alone
  /// Empty on success; otherwise the task's failure diagnostic, prefixed
  /// with the benchmark/style context. A failed task carries a
  /// default-constructed FlowResult — one poisoned cell degrades that cell
  /// only, never the wave (the daemon's per-request error contract).
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Runs one cell (exposed so serial reference loops share the exact code
/// path of the parallel engine). Exceptions thrown inside the flow are
/// captured into MatrixResult::error with task context; only plan-level
/// misuse (an out-of-range lane count) still throws.
MatrixResult run_task(const RunPlan& plan, const MatrixTask& task);

/// Executes every task of `plan` on `executor` and returns results in
/// plan order. Per-stage SEC / lint checkpoints inside each run_flow()
/// fan out onto the same executor. A failing task is reported through its
/// MatrixResult::error — the rest of the wave completes unaffected.
std::vector<MatrixResult> run_matrix(const RunPlan& plan,
                                     util::Executor& executor);

/// Serial reference: same results (bit-identical), no threads involved.
std::vector<MatrixResult> run_matrix(const RunPlan& plan);

/// Executes several plans on one shared executor, every task of every
/// plan submitted in a single wave — the configuration-sweep drivers
/// (fig2/fig3/fig4, ablation_cg, ablation_retime) build one plan per
/// FlowOptions/workload configuration and keep the pool saturated across
/// configurations instead of barriering between run_matrix calls.
/// Returns one result vector per plan, each in that plan's order; the
/// run_matrix determinism contract applies to every plan independently.
std::vector<std::vector<MatrixResult>> run_matrices(
    std::span<const RunPlan> plans, util::Executor& executor);

/// FNV-1a hash of an output stream (cycle and bit order significant);
/// the cheap fingerprint the CI divergence gate compares across thread
/// counts.
std::uint64_t stream_hash(const OutputStream& stream);

}  // namespace tp::flow
