#include "src/flow/matrix.hpp"

#include <future>
#include <utility>

#include "src/util/executor.hpp"
#include "src/util/log.hpp"

namespace tp::flow {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = kFnvOffset;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// splitmix64 finalizer (Steele et al.): bijective avalanche mix.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t task_seed(std::uint64_t base, std::string_view benchmark) {
  return mix(base ^ mix(fnv1a(benchmark)));
}

std::vector<MatrixTask> RunPlan::tasks() const {
  const std::vector<std::string>& names =
      benchmarks.empty() ? circuits::benchmark_names() : benchmarks;
  std::vector<MatrixTask> tasks;
  tasks.reserve(names.size() * styles.size());
  for (const std::string& name : names) {
    for (const DesignStyle style : styles) {
      MatrixTask task;
      task.index = tasks.size();
      task.benchmark = name;
      task.style = style;
      task.seed = task_seed(stimulus_seed, name);
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

MatrixResult run_task(const RunPlan& plan, const MatrixTask& task) {
  Stopwatch watch;
  const circuits::Benchmark bench = circuits::make_benchmark(task.benchmark);
  const Stimulus stimulus =
      circuits::make_stimulus(bench, plan.workload, plan.cycles, task.seed);
  MatrixResult out;
  out.task = task;
  out.result = run_flow(bench, task.style, stimulus, plan.options);
  out.seconds = watch.seconds();
  return out;
}

std::vector<MatrixResult> run_matrix(const RunPlan& plan,
                                     util::Executor& executor) {
  const std::vector<MatrixTask> tasks = plan.tasks();
  // Each task gets the shared options plus the executor, so the opt-in
  // per-stage SEC / lint checkpoints inside run_flow() overlap with the
  // transforms instead of serializing behind them.
  RunPlan parallel_plan = plan;
  parallel_plan.options.executor = &executor;
  std::vector<std::future<MatrixResult>> futures;
  futures.reserve(tasks.size());
  for (const MatrixTask& task : tasks) {
    futures.push_back(executor.submit(
        [&parallel_plan, task]() { return run_task(parallel_plan, task); }));
  }
  std::vector<MatrixResult> results;
  results.reserve(tasks.size());
  // Join every future even if one throws — queued lambdas reference
  // parallel_plan, which must outlive them. The first failing task in
  // plan order is rethrown once all tasks have settled.
  std::exception_ptr first_error;
  for (std::future<MatrixResult>& future : futures) {
    try {
      // wait() helps: the main thread runs queued tasks too, so a
      // 1-worker executor still overlaps with its caller.
      results.push_back(executor.wait(std::move(future)));
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<MatrixResult> run_matrix(const RunPlan& plan) {
  std::vector<MatrixResult> results;
  const std::vector<MatrixTask> tasks = plan.tasks();
  results.reserve(tasks.size());
  for (const MatrixTask& task : tasks) {
    results.push_back(run_task(plan, task));
  }
  return results;
}

std::uint64_t stream_hash(const OutputStream& stream) {
  std::uint64_t hash = kFnvOffset;
  for (const auto& row : stream) {
    hash ^= row.size();
    hash *= kFnvPrime;
    for (const std::uint8_t bit : row) {
      hash ^= bit;
      hash *= kFnvPrime;
    }
  }
  return hash;
}

}  // namespace tp::flow
