#include "src/flow/matrix.hpp"

#include <future>
#include <utility>

#include "src/util/executor.hpp"
#include "src/util/hash.hpp"
#include "src/util/log.hpp"
#include "src/util/strcat.hpp"

namespace tp::flow {

using util::fnv1a;
using util::splitmix64;

std::uint64_t task_seed(std::uint64_t base, std::string_view benchmark) {
  return splitmix64(base ^ splitmix64(fnv1a(benchmark)));
}

std::uint64_t lane_seed(std::uint64_t task_seed, std::size_t lane) {
  if (lane == 0) return task_seed;  // one-lane plans match the old engine
  return splitmix64(task_seed ^ splitmix64(lane));
}

std::vector<MatrixTask> RunPlan::tasks() const {
  const std::vector<std::string>& names =
      benchmarks.empty() ? circuits::benchmark_names() : benchmarks;
  std::vector<MatrixTask> tasks;
  tasks.reserve(names.size() * styles.size());
  for (const std::string& name : names) {
    for (const DesignStyle style : styles) {
      MatrixTask task;
      task.index = tasks.size();
      task.benchmark = name;
      task.style = style;
      task.seed = task_seed(stimulus_seed, name);
      tasks.push_back(std::move(task));
    }
  }
  return tasks;
}

MatrixResult run_task(const RunPlan& plan, const MatrixTask& task) {
  require(plan.lanes >= 1 && plan.lanes <= kMaxSimLanes,
          "run_task: RunPlan::lanes must be in [1, 64]");
  Stopwatch watch;
  MatrixResult out;
  out.task = task;
  try {
    if (plan.cancel != nullptr &&
        plan.cancel->load(std::memory_order_relaxed)) {
      throw Error("canceled before start");
    }
    const circuits::Benchmark bench =
        circuits::make_benchmark(task.benchmark);
    // The cycle budget is split across lanes (rounded up), each lane with
    // its own derived seed; lane 0 of a 1-lane plan is exactly the old
    // single-stimulus task.
    const std::size_t per_lane =
        (plan.cycles + plan.lanes - 1) / plan.lanes;
    std::vector<Stimulus> stimuli;
    stimuli.reserve(plan.lanes);
    for (std::size_t l = 0; l < plan.lanes; ++l) {
      stimuli.push_back(circuits::make_stimulus(
          bench, plan.workload, per_lane, lane_seed(task.seed, l)));
    }
    out.result = run_flow(bench, task.style, stimuli, plan.options);
  } catch (const std::exception& e) {
    out.error = cat("task ", task.index, " (", task.benchmark, "/",
                    style_name(task.style), "): ", e.what());
  }
  out.seconds = watch.seconds();
  return out;
}

std::vector<MatrixResult> run_matrix(const RunPlan& plan,
                                     util::Executor& executor) {
  const std::vector<MatrixTask> tasks = plan.tasks();
  // Each task gets the shared options plus the executor, so the opt-in
  // per-stage SEC / lint checkpoints inside run_flow() overlap with the
  // transforms instead of serializing behind them.
  RunPlan parallel_plan = plan;
  parallel_plan.options.executor = &executor;
  std::vector<std::future<MatrixResult>> futures;
  futures.reserve(tasks.size());
  for (const MatrixTask& task : tasks) {
    futures.push_back(executor.submit(
        [&parallel_plan, task]() { return run_task(parallel_plan, task); }));
  }
  std::vector<MatrixResult> results;
  results.reserve(tasks.size());
  // Flow failures are captured per-task inside run_task; only plan-level
  // misuse (the lanes precondition) still surfaces as an exception. Join
  // every future even then — queued lambdas reference parallel_plan, which
  // must outlive them — and rethrow the first failure in plan order once
  // all tasks have settled.
  std::exception_ptr first_error;
  for (std::future<MatrixResult>& future : futures) {
    try {
      // wait() helps: the main thread runs queued tasks too, so a
      // 1-worker executor still overlaps with its caller.
      results.push_back(executor.wait(std::move(future)));
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<MatrixResult> run_matrix(const RunPlan& plan) {
  std::vector<MatrixResult> results;
  const std::vector<MatrixTask> tasks = plan.tasks();
  results.reserve(tasks.size());
  for (const MatrixTask& task : tasks) {
    results.push_back(run_task(plan, task));
  }
  return results;
}

std::vector<std::vector<MatrixResult>> run_matrices(
    std::span<const RunPlan> plans, util::Executor& executor) {
  // Plan copies with the executor attached; sized up front so the queued
  // lambdas' references stay valid for the whole join.
  std::vector<RunPlan> parallel_plans(plans.begin(), plans.end());
  std::vector<std::vector<std::future<MatrixResult>>> futures(plans.size());
  for (std::size_t p = 0; p < parallel_plans.size(); ++p) {
    RunPlan& plan = parallel_plans[p];
    plan.options.executor = &executor;
    for (const MatrixTask& task : plan.tasks()) {
      futures[p].push_back(executor.submit(
          [&plan, task]() { return run_task(plan, task); }));
    }
  }
  std::vector<std::vector<MatrixResult>> results(plans.size());
  std::exception_ptr first_error;
  for (std::size_t p = 0; p < futures.size(); ++p) {
    results[p].reserve(futures[p].size());
    for (std::future<MatrixResult>& future : futures[p]) {
      try {
        results[p].push_back(executor.wait(std::move(future)));
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::uint64_t stream_hash(const OutputStream& stream) {
  return util::stream_hash(stream);
}

}  // namespace tp::flow
