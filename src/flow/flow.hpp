// End-to-end design flows (Sec. IV-B): the public entry point of the
// library.
//
// run_flow() takes an FF-based benchmark netlist and produces one of the
// three design styles the paper compares, carrying it through synthesis
// clock-gating inference, conversion, modified retiming, p2 clock gating
// (common-enable with M1/M2 plus multi-bit DDCG), hold repair, placement,
// clock-tree synthesis, gate-level simulation, and power analysis — with
// per-step wall-clock accounting matching the paper's run-time discussion.
//
// The returned output stream allows direct cross-style validation
// ("streaming inputs ... and comparing output streams", Sec. V).
#pragma once

#include <functional>
#include <iosfwd>
#include <span>
#include <string>

#include "src/check/checker.hpp"
#include "src/circuits/benchmark.hpp"
#include "src/cts/cts.hpp"
#include "src/equiv/sec.hpp"
#include "src/phase/assignment.hpp"
#include "src/power/power.hpp"
#include "src/retime/retime.hpp"
#include "src/sim/stimulus.hpp"
#include "src/timing/sta.hpp"
#include "src/transform/buffering.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/transform/ddcg.hpp"
#include "src/transform/det_ff.hpp"
#include "src/transform/p2_gating.hpp"
#include "src/transform/pulsed_latch.hpp"
#include "src/transform/two_phase.hpp"

namespace tp::util {
class Executor;
}  // namespace tp::util

namespace tp::flow {

/// One conversion backend per value; src/flow/backend.hpp holds the
/// interface and registry. DesignStyle remains the stable wire-format id
/// (cache keys, serialized jobs), so values are appended, never reordered.
enum class DesignStyle {
  kFlipFlop,
  kMasterSlave,
  kThreePhase,
  kPulsedLatch,
  kTwoPhase,
  kDetFf,
};

inline constexpr int kNumDesignStyles = static_cast<int>(DesignStyle::kDetFf) + 1;

std::string_view style_name(DesignStyle style);

struct FlowOptions {
  CgInferenceOptions synthesis_cg;  // clock-gating style during "synthesis"
  BufferingOptions buffering;       // high-fanout net buffering
  AssignOptions assign;             // 3-phase phase assignment
  bool retime = true;               // modified retiming of inserted latches
  bool retime_master_slave = true;  // slave retiming for the M-S baseline
  bool p2_common_enable_cg = true;
  bool use_m1 = true;
  bool use_m2 = true;
  bool ddcg = true;
  DdcgOptions ddcg_options;
  bool hold_repair = true;
  /// Keep one IncrementalTimer session alive across the timed stages (hold
  /// repair passes and the signoff STA) instead of running each as a cold
  /// full analysis: the netlist mutation journal scopes every re-analysis
  /// to the edited cone. Reports are byte-identical to fresh check_timing()
  /// runs (the session's identity contract, gated by tests); StepTimes
  /// records the full/incremental wall-clock split.
  bool incremental_timing = true;
  PulsedLatchOptions pulsed_latch;
  TwoPhaseOptions two_phase;
  TimingOptions timing;
  PlaceOptions place;
  CtsOptions cts;
  std::size_t warmup_cycles = 16;

  /// Simulate with the bit-parallel WideSimulator (src/sim/wide_sim.hpp)
  /// whenever more than one stimulus lane is supplied. Bit-identity
  /// contract: wide and scalar runs produce the same output streams and
  /// the same summed ActivityStats, so this is purely a speed switch.
  /// With a single lane the scalar engine runs either way.
  bool wide_sim = true;
  /// When set, the final validation simulation dumps a VCD to this stream.
  /// Waveforms are a per-lane concept, so only the first stimulus lane is
  /// recorded and that simulation uses the scalar engine (the DDCG
  /// activity simulation stays wide). Not owned.
  std::ostream* vcd = nullptr;

  /// Run a sequential equivalence check (src/equiv/) against the input FF
  /// netlist after every transform stage, recording which stage (if any)
  /// first diverges. Opt-in: proofs cost far more than the transforms.
  bool check_equivalence = false;
  equiv::SecOptions sec;
  /// Run the static phase-rule checker (src/check/) after every transform
  /// stage, recording per-stage reports so a violation is blamed on the
  /// first stage that introduced it. Far cheaper than check_equivalence —
  /// the rules are structural, no SAT involved.
  bool check_rules = false;
  check::CheckOptions lint;
  /// Also run the dataflow analyses (src/analysis/: A1 X-propagation, A2
  /// min-delay races, A3 borrowing chains) at every checkpoint, merged into
  /// the same per-stage lint reports so first_violation() blames the stage
  /// that introduced an analysis finding too. Honors `lint` for waivers and
  /// disabled rules. Costlier than the structural rules (each checkpoint
  /// re-runs an abstract simulation and two STA passes) but still far
  /// cheaper than check_equivalence.
  bool check_analysis = false;
  /// Drive the analysis checkpoints through an incremental
  /// analysis::AnalysisSession instead of a fresh run_analysis() per
  /// stage: the netlist mutation journal feeds dirty-cone invalidation,
  /// so unchanged stages are served from cache and domain labels are
  /// re-derived only where the stage edited. Reports are byte-identical
  /// to full re-analysis (gated by tests). Applies to the inline path
  /// only — with `executor` set the checkpoints are pure snapshot tasks
  /// and always run the full analysis.
  bool incremental_analysis = true;
  /// A3 cumulative borrow budget in ps; negative means the default of one
  /// full phase segment (period / num_phases).
  double borrow_budget_ps = -1.0;
  /// Test hook invoked at every SEC checkpoint *before* the check runs;
  /// lets tests inject a fault at a named stage and assert that the
  /// checkpoint report blames exactly that stage.
  std::function<void(Netlist&, std::string_view)> stage_hook;

  /// When set, the opt-in per-stage SEC and lint checkpoints run as tasks
  /// on this executor against a snapshot of the stage output, overlapping
  /// with the remaining transform stages instead of serializing behind
  /// them; run_flow() joins them before returning, so FlowResult is
  /// unchanged (and bit-identical to the executor-less run — the checks
  /// are pure functions of the snapshot). run_matrix() sets this
  /// automatically. Not owned.
  util::Executor* executor = nullptr;

  /// The configuration every paper table uses; identical to a
  /// default-constructed FlowOptions, spelled as a named constructor so
  /// call sites say which regime they mean.
  static FlowOptions paper_defaults();
  /// Cheap smoke-test regime: skips retiming, DDCG (which costs an extra
  /// gate-level simulation), and hold repair, and halves the warmup.
  /// Still produces valid, comparable output streams.
  static FlowOptions fast();
  /// Ablation regime with every post-conversion clock-gating technique
  /// disabled (no common-enable P2 gating, M1, M2, or DDCG); isolates the
  /// conversion itself, as in the paper's gating ablations.
  static FlowOptions no_gating();
};

/// One per-stage equivalence checkpoint (FlowOptions::check_equivalence).
struct StageCheck {
  std::string stage;        // "synthesis", "convert", "retime", ...
  equiv::SecResult result;  // verdict against the input FF netlist
  double seconds = 0;
};

struct EquivChecks {
  std::vector<StageCheck> stages;

  [[nodiscard]] bool all_proven() const {
    for (const StageCheck& s : stages) {
      if (s.result.status != equiv::SecStatus::kProven) return false;
    }
    return true;
  }
  /// First checkpoint that failed to prove equivalence (nullptr when every
  /// stage proved, or when checking was disabled).
  [[nodiscard]] const StageCheck* first_failure() const {
    for (const StageCheck& s : stages) {
      if (s.result.status != equiv::SecStatus::kProven) return &s;
    }
    return nullptr;
  }
};

/// One per-stage lint checkpoint (FlowOptions::check_rules).
struct StageLint {
  std::string stage;          // "synthesis", "convert", "retime", ...
  check::CheckReport report;  // rule findings on the stage's output netlist
  double seconds = 0;
};

struct RuleChecks {
  std::vector<StageLint> stages;

  [[nodiscard]] bool all_clean() const {
    for (const StageLint& s : stages) {
      if (!s.report.clean()) return false;
    }
    return true;
  }
  /// First checkpoint with an unwaived violation — the stage to blame
  /// (nullptr when every stage is clean, or when checking was disabled).
  [[nodiscard]] const StageLint* first_violation() const {
    for (const StageLint& s : stages) {
      if (!s.report.clean()) return &s;
    }
    return nullptr;
  }
};

/// Per-step wall-clock seconds (the paper reports ILP <= 27 s and < 1% of
/// total, CTS ~3x and routing +35% for 3-phase designs).
struct StepTimes {
  double synthesis_s = 0;
  double ilp_s = 0;
  double convert_s = 0;
  double retime_s = 0;
  double clock_gating_s = 0;
  double hold_s = 0;    // hold-buffer repair (was mis-filed under timing_s)
  double timing_s = 0;  // STA signoff only
  double place_s = 0;
  double cts_s = 0;
  double sim_s = 0;
  double equiv_s = 0;  // per-stage SEC checkpoints (opt-in)
  double lint_s = 0;   // per-stage rule checks (opt-in)

  /// Split of the STA wall clock hiding inside hold_s and timing_s: time
  /// spent in full arrival passes vs. incremental dirty-cone patches (zero
  /// when FlowOptions::incremental_timing is off). Not part of total_s() —
  /// these seconds are already counted by the stages that spent them.
  double sta_full_s = 0;
  double sta_incremental_s = 0;

  [[nodiscard]] double total_s() const {
    return synthesis_s + ilp_s + convert_s + retime_s + clock_gating_s +
           hold_s + timing_s + place_s + cts_s + sim_s + equiv_s + lint_s;
  }
};

struct FlowResult {
  DesignStyle style = DesignStyle::kFlipFlop;
  Netlist netlist{"empty"};

  // Table I metrics.
  int registers = 0;
  double area_um2 = 0;

  // Table II metrics.
  PowerBreakdown power;

  TimingReport timing;
  OutputStream outputs;  // stream captured under the supplied stimulus
  StepTimes times;

  // 3-phase details.
  PhaseAssignment assignment;
  int inserted_p2 = 0;
  int duplicated_icgs = 0;
  RetimeResult retime;
  P2GatingResult p2_gating;
  M2Result m2;
  DdcgResult ddcg;
  HoldRepairResult hold;
  CgInferenceResult synthesis_cg;
  BufferingResult buffering;
  int pulse_generators = 0;  // pulsed-latch style
  int dividers = 0;          // DET-FF style: kClkDiv2 cells inserted

  /// Per-stage SEC checkpoints (empty unless check_equivalence was set).
  EquivChecks equiv;

  /// Per-stage rule-check reports (empty unless check_rules was set).
  RuleChecks lint;
};

/// Runs the complete flow for one style of the benchmark under `stimulus`.
FlowResult run_flow(const circuits::Benchmark& benchmark, DesignStyle style,
                    const Stimulus& stimulus, const FlowOptions& options = {});

/// Multi-lane variant: runs the flow once and simulates every stimulus
/// lane — bit-parallel in one WideSimulator pass when
/// FlowOptions::wide_sim allows, scalar lane-by-lane otherwise, with
/// bit-identical results either way. `lanes` must hold 1..kMaxSimLanes
/// equally-shaped stimuli; FlowResult::outputs is the lane-major
/// concatenation of the per-lane streams and the power activity is the
/// sum over lanes.
FlowResult run_flow(const circuits::Benchmark& benchmark, DesignStyle style,
                    std::span<const Stimulus> lanes,
                    const FlowOptions& options = {});

/// Diagnostic result of a stream comparison: where two flows first diverged,
/// or `cycle == -1` when the streams match. Converts to bool ("equal") so
/// `assert(flow::equivalent(a, b))` keeps working.
struct StreamDiff {
  std::ptrdiff_t cycle = -1;
  std::size_t output = 0;
  std::string output_name;
  bool expected = false;  // value in `a`
  bool got = false;       // value in `b`

  [[nodiscard]] bool equal() const { return cycle < 0; }
  explicit operator bool() const { return equal(); }
  [[nodiscard]] std::string to_string() const;
};

/// Compares the output streams of two flow results, reporting the first
/// divergence (cycle index, output name, expected/got) instead of a bare
/// bool.
StreamDiff equivalent(const FlowResult& a, const FlowResult& b);

}  // namespace tp::flow
