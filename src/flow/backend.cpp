#include "src/flow/backend.hpp"

#include "src/netlist/traverse.hpp"
#include "src/util/log.hpp"
#include "src/util/strcat.hpp"

namespace tp::flow {
namespace {

using check::RuleId;

/// Retiming with timing-closure iteration: when a cut leaves a setup
/// violation (upstream borrowing eats into the half-stage budgets), retry
/// on a pristine copy with progressively conservative settings — larger
/// margins, then worst-case full-borrowing launch seeds.
RetimeResult retime_with_closure(Netlist& netlist,
                                 const CellLibrary& library, Phase movable,
                                 const TimingOptions& timing,
                                 util::Executor* executor) {
  struct Attempt {
    double margin;
    bool full_borrowing;
  };
  const Netlist pristine = netlist;
  RetimeResult result;
  for (const Attempt attempt : {Attempt{120, false}, Attempt{300, false},
                                Attempt{120, true}, Attempt{500, true}}) {
    netlist = pristine;
    result = retime_inserted_latches(
        netlist, library,
        {.movable_phase = movable,
         .margin_ps = attempt.margin,
         .assume_full_borrowing = attempt.full_borrowing,
         .executor = executor});
    if (check_timing(netlist, library, timing).setup_ok) break;
  }
  return result;
}

/// First live register of kind `kind`; throws when the netlist has none
/// (seeded violations need a victim of the backend's own sequencing kind).
CellId find_register(const Netlist& netlist, CellKind kind) {
  for (const CellId id : netlist.registers()) {
    if (netlist.cell(id).kind == kind) return id;
  }
  throw Error(cat("seed_violation: no ", cell_kind_name(kind),
                  " register in '", netlist.name(), "'"));
}

// --- flip-flop baseline ------------------------------------------------------

class FlipFlopBackend final : public ConversionBackend {
 public:
  [[nodiscard]] DesignStyle id() const override {
    return DesignStyle::kFlipFlop;
  }
  [[nodiscard]] std::string_view token() const override { return "ff"; }
  [[nodiscard]] std::string_view display_name() const override {
    return "FF";
  }
  [[nodiscard]] std::string_view description() const override {
    return "flip-flop baseline: the synthesized design unchanged";
  }
  void convert(FlowContext& ctx) const override {
    // Nothing to convert; the FF netlist is the reference point every
    // other backend is compared (and SEC-proven) against.
    ctx.result.times.convert_s = 0;
  }
  [[nodiscard]] std::vector<RuleId> rule_set() const override {
    return {RuleId::kClockReachability, RuleId::kConstantClock,
            RuleId::kCombCycle,           RuleId::kFloatingNet,
            RuleId::kMultipleDrivers,     RuleId::kCdcUnsync,
            RuleId::kCdcReconverge,       RuleId::kRdcCrossing};
  }
  [[nodiscard]] std::vector<CellKind> cells() const override {
    return {CellKind::kDff};
  }
  RuleId seed_violation(Netlist& netlist) const override {
    // Rewire a flip-flop's clock pin onto its own data net: the backward
    // clock walk lands in data logic instead of a phase root.
    const CellId victim = find_register(netlist, CellKind::kDff);
    const NetId d = netlist.cell(victim).ins[0];
    netlist.morph_cell(victim, CellKind::kDff, {d, d});
    return RuleId::kClockReachability;
  }
};

// --- master-slave baseline ---------------------------------------------------

class MasterSlaveBackend final : public ConversionBackend {
 public:
  [[nodiscard]] DesignStyle id() const override {
    return DesignStyle::kMasterSlave;
  }
  [[nodiscard]] std::string_view token() const override { return "ms"; }
  [[nodiscard]] std::string_view display_name() const override {
    return "M-S";
  }
  [[nodiscard]] std::string_view description() const override {
    return "master-slave: each FF split into a latch pair on one clock "
           "net, slaves retimed into the logic";
  }
  void convert(FlowContext& ctx) const override {
    Stopwatch step;
    ctx.netlist = to_master_slave(ctx.netlist);
    ctx.result.times.convert_s = step.seconds();
    ctx.checkpoint("convert");
    step.reset();
    if (ctx.options.retime && ctx.options.retime_master_slave) {
      ctx.result.retime = retime_with_closure(
          ctx.netlist, ctx.library, Phase::kClk, ctx.options.timing,
          ctx.options.executor);
      ctx.result.times.retime_s = step.seconds();
      ctx.checkpoint("retime");
    }
  }
  [[nodiscard]] std::vector<RuleId> rule_set() const override {
    return {RuleId::kClockReachability, RuleId::kConstantClock,
            RuleId::kScheduleSanity,      RuleId::kCdcUnsync,
            RuleId::kCdcReconverge,       RuleId::kRdcCrossing};
  }
  [[nodiscard]] std::vector<CellKind> cells() const override {
    return {CellKind::kLatchL, CellKind::kLatchH};
  }
  RuleId seed_violation(Netlist& netlist) const override {
    // Tie a latch gate to constant 1: permanently transparent.
    const CellId victim = find_register(netlist, CellKind::kLatchH);
    const CellId one =
        netlist.add_gate(CellKind::kConst1, "seed_const1", {});
    netlist.morph_cell(victim, CellKind::kLatchH,
                       {netlist.cell(victim).ins[0], netlist.cell(one).out});
    return RuleId::kConstantClock;
  }
};

// --- 3-phase (the paper's conversion) ----------------------------------------

class ThreePhaseBackend final : public ConversionBackend {
 public:
  [[nodiscard]] DesignStyle id() const override {
    return DesignStyle::kThreePhase;
  }
  [[nodiscard]] std::string_view token() const override { return "3p"; }
  [[nodiscard]] std::string_view display_name() const override {
    return "3-P";
  }
  [[nodiscard]] std::string_view description() const override {
    return "3-phase latches (the paper's conversion): ILP phase "
           "assignment, p2 insertion, retiming, common-enable/M1/M2/DDCG "
           "clock gating";
  }
  void convert(FlowContext& ctx) const override {
    Netlist& netlist = ctx.netlist;
    FlowResult& result = ctx.result;
    const FlowOptions& options = ctx.options;
    Stopwatch step;
    // ILP timed apart from the netlist rebuild (the paper reports the
    // solver at < 1% of total run time).
    const RegisterGraph graph = build_register_graph(netlist);
    result.assignment = assign_phases(graph, options.assign);
    result.times.ilp_s = step.seconds();
    step.reset();

    ThreePhaseOptions convert_options;
    convert_options.precomputed = &result.assignment;
    ThreePhaseResult converted = to_three_phase(netlist, convert_options);
    netlist = std::move(converted.netlist);
    result.inserted_p2 = converted.inserted_p2;
    result.duplicated_icgs = converted.duplicated_icgs;
    result.times.convert_s = step.seconds();
    ctx.checkpoint("convert");
    step.reset();

    if (options.retime) {
      result.retime = retime_with_closure(netlist, ctx.library, Phase::kP2,
                                          options.timing, options.executor);
      result.times.retime_s = step.seconds();
      ctx.checkpoint("retime");
      step.reset();
    }

    if (options.p2_common_enable_cg) {
      result.p2_gating = gate_p2_latches(netlist, {.use_m1 = options.use_m1});
      result.times.clock_gating_s += step.seconds();
      ctx.checkpoint("p2-gating");
      step.reset();
    }
    if (options.use_m2) {
      result.m2 = apply_m2(netlist);
      result.times.clock_gating_s += step.seconds();
      ctx.checkpoint("m2");
      step.reset();
    }
    if (options.ddcg) {
      // DDCG needs switching activity of this very netlist (Sec. V:
      // gate-level simulations drive the data-driven clock gating).
      const ActivityStats activity = ctx.activity();
      result.ddcg = apply_ddcg(netlist, activity, options.ddcg_options);
      result.times.clock_gating_s += step.seconds();
      ctx.checkpoint("ddcg");
    }
  }
  [[nodiscard]] std::vector<RuleId> rule_set() const override {
    return {RuleId::kTransparencyRace, RuleId::kPhaseOrder,
            RuleId::kLatchSelfLoop,    RuleId::kScheduleSanity,
            RuleId::kMixedPhaseIcg,    RuleId::kDdcgFanout,
            RuleId::kM1BorrowWindow,   RuleId::kM2EnablePhase,
            RuleId::kCdcUnsync,        RuleId::kCdcReconverge,
            RuleId::kRdcCrossing};
  }
  [[nodiscard]] std::vector<CellKind> cells() const override {
    return {CellKind::kLatchH, CellKind::kIcg, CellKind::kIcgM1,
            CellKind::kIcgNoLatch};
  }
  RuleId seed_violation(Netlist& netlist) const override {
    // Preferred seed: bypass an inserted p2 latch sitting between a p3
    // and a p1 latch — the exact dropped-latch defect C1 exists to catch.
    const RegisterGraph graph = build_register_graph(netlist);
    for (std::size_t w = 0; w < graph.regs.size(); ++w) {
      const Cell& cw = netlist.cell(graph.regs[w]);
      if (cw.phase != Phase::kP2 || !is_latch(cw.kind)) continue;
      bool from_p3 = false;
      for (std::size_t u = 0; u < graph.regs.size() && !from_p3; ++u) {
        for (const int v : graph.fanout[u]) {
          if (v == static_cast<int>(w) &&
              netlist.cell(graph.regs[u]).phase == Phase::kP3) {
            from_p3 = true;
            break;
          }
        }
      }
      if (!from_p3) continue;
      for (const int v : graph.fanout[w]) {
        if (netlist.cell(graph.regs[v]).phase != Phase::kP1) continue;
        netlist.morph_cell(graph.regs[w], CellKind::kBuf,
                           {netlist.cell(graph.regs[w]).ins[0]});
        netlist.set_phase(graph.regs[w], Phase::kNone);
        return RuleId::kPhaseOrder;
      }
    }
    // Fallback when the benchmark has no p3 -> p2 -> p1 chain: break the
    // SMO closing-edge order instead (e2 > e3).
    ClockSpec& clocks = netlist.clocks();
    for (PhaseWaveform& wave : clocks.phases) {
      if (wave.phase == Phase::kP2) {
        wave.fall_ps = clocks.period_ps + 10;
      }
    }
    return RuleId::kScheduleSanity;
  }
};

// --- pulsed latch ------------------------------------------------------------

class PulsedLatchBackend final : public ConversionBackend {
 public:
  [[nodiscard]] DesignStyle id() const override {
    return DesignStyle::kPulsedLatch;
  }
  [[nodiscard]] std::string_view token() const override { return "pl"; }
  [[nodiscard]] std::string_view display_name() const override {
    return "P-L";
  }
  [[nodiscard]] std::string_view description() const override {
    return "pulsed latches: shared pulse generators, near-edge-triggered "
           "behavior at latch cost (hold-repair heavy)";
  }
  void convert(FlowContext& ctx) const override {
    Stopwatch step;
    PulsedLatchResult converted =
        to_pulsed_latch(ctx.netlist, ctx.options.pulsed_latch);
    ctx.netlist = std::move(converted.netlist);
    ctx.result.pulse_generators = converted.pulse_generators;
    ctx.result.times.convert_s = step.seconds();
    ctx.checkpoint("convert");
  }
  [[nodiscard]] std::vector<RuleId> rule_set() const override {
    return {RuleId::kPulseWidth,     RuleId::kClockReachability,
            RuleId::kScheduleSanity, RuleId::kCdcUnsync,
            RuleId::kCdcReconverge,  RuleId::kRdcCrossing};
  }
  [[nodiscard]] std::vector<CellKind> cells() const override {
    return {CellKind::kLatchP};
  }
  RuleId seed_violation(Netlist& netlist) const override {
    // Stretch the pulse past half the cycle: the latches degenerate into
    // level-sensitive operation.
    ClockSpec& clocks = netlist.clocks();
    require(!clocks.phases.empty(), "seed_violation: no clock plan");
    clocks.phases.front().fall_ps =
        clocks.phases.front().rise_ps + clocks.period_ps / 2 +
        clocks.period_ps / 4;
    return RuleId::kPulseWidth;
  }
};

// --- two-phase non-overlapping ----------------------------------------------

class TwoPhaseBackend final : public ConversionBackend {
 public:
  [[nodiscard]] DesignStyle id() const override {
    return DesignStyle::kTwoPhase;
  }
  [[nodiscard]] std::string_view token() const override { return "2p"; }
  [[nodiscard]] std::string_view display_name() const override {
    return "2-P";
  }
  [[nodiscard]] std::string_view description() const override {
    return "two-phase non-overlapping latches: master on clkbar, slave on "
           "clk, guard gaps on both hand-offs";
  }
  void convert(FlowContext& ctx) const override {
    Stopwatch step;
    TwoPhaseResult converted =
        to_two_phase(ctx.netlist, ctx.options.two_phase);
    ctx.netlist = std::move(converted.netlist);
    ctx.result.duplicated_icgs = converted.duplicated_icgs;
    ctx.result.times.convert_s = step.seconds();
    ctx.checkpoint("convert");
  }
  [[nodiscard]] std::vector<RuleId> rule_set() const override {
    return {RuleId::kTwoPhaseNonOverlap, RuleId::kClockReachability,
            RuleId::kScheduleSanity,     RuleId::kCdcUnsync,
            RuleId::kCdcReconverge,      RuleId::kRdcCrossing};
  }
  [[nodiscard]] std::vector<CellKind> cells() const override {
    return {CellKind::kLatchH};
  }
  RuleId seed_violation(Netlist& netlist) const override {
    // Erase the guard gap between clk's fall and clkbar's rise. The
    // windows merely abut — still disjoint, so schedule-sanity stays
    // quiet — but the non-overlap discipline is gone.
    ClockSpec& clocks = netlist.clocks();
    PhaseWaveform* clk = nullptr;
    PhaseWaveform* clkbar = nullptr;
    for (PhaseWaveform& wave : clocks.phases) {
      if (wave.phase == Phase::kClk) clk = &wave;
      if (wave.phase == Phase::kClkBar) clkbar = &wave;
    }
    require(clk != nullptr && clkbar != nullptr,
            "seed_violation: not a two-phase clock plan");
    clk->fall_ps = clkbar->rise_ps;
    return RuleId::kTwoPhaseNonOverlap;
  }
};

// --- dual-edge-triggered FF retarget -----------------------------------------

class DetFfBackend final : public ConversionBackend {
 public:
  [[nodiscard]] DesignStyle id() const override {
    return DesignStyle::kDetFf;
  }
  [[nodiscard]] std::string_view token() const override { return "det"; }
  [[nodiscard]] std::string_view display_name() const override {
    return "DET";
  }
  [[nodiscard]] std::string_view description() const override {
    return "dual-edge-triggered FFs on leaf-divided clocks: half the "
           "clock-network edges per cycle";
  }
  void convert(FlowContext& ctx) const override {
    Stopwatch step;
    DetFfResult converted = to_det_ff(ctx.netlist);
    ctx.netlist = std::move(converted.netlist);
    ctx.result.dividers = converted.dividers;
    ctx.result.times.convert_s = step.seconds();
    ctx.checkpoint("convert");
  }
  [[nodiscard]] std::vector<RuleId> rule_set() const override {
    return {RuleId::kDetClocking,    RuleId::kClockReachability,
            RuleId::kScheduleSanity, RuleId::kCdcUnsync,
            RuleId::kCdcReconverge,  RuleId::kRdcCrossing};
  }
  [[nodiscard]] std::vector<CellKind> cells() const override {
    return {CellKind::kDffDet, CellKind::kClkDiv2};
  }
  RuleId seed_violation(Netlist& netlist) const override {
    // Reconnect a DET FF's clock pin past its divider to the full-rate
    // clock: the FF would sample on both raw edges, twice per cycle.
    const CellId victim = find_register(netlist, CellKind::kDffDet);
    const CellId divider =
        netlist.net(netlist.cell(victim).ins[1]).driver;
    require(divider.valid() &&
                netlist.cell(divider).kind == CellKind::kClkDiv2,
            "seed_violation: DET register not behind a divider");
    netlist.morph_cell(victim, CellKind::kDffDet,
                       {netlist.cell(victim).ins[0],
                        netlist.cell(divider).ins[0]});
    return RuleId::kDetClocking;
  }
};

}  // namespace

void ConversionBackend::adjust_library(CellLibrary&) const {}

check::RuleId ConversionBackend::seed_cdc_violation(Netlist& netlist) const {
  // Generic plant, valid for every sequencing discipline: clock a fresh
  // source register off a /2 divider hung on an existing register's clock
  // pin, then merge its output combinationally into that register's data
  // pin. The source samples at half the victim's effective rate and the
  // merge gate is not a two-register synchronizer, so A4 must fire.
  const std::vector<CellId> regs = netlist.registers();
  if (regs.empty()) {
    throw Error(cat("seed_cdc_violation: no registers in '", netlist.name(),
                    "'"));
  }
  const CellId victim = regs.front();
  const Cell& victim_cell = netlist.cell(victim);
  const NetId victim_clk = victim_cell.ins[clock_pin(victim_cell.kind)];
  const NetId victim_d = victim_cell.ins[0];
  const CellId divider =
      netlist.add_gate(CellKind::kClkDiv2, "cdc_seed_div", {victim_clk});
  const CellId src = netlist.add_gate(
      CellKind::kDff, "cdc_seed_src",
      {victim_d, netlist.cell(divider).out}, victim_cell.phase);
  const CellId mix = netlist.add_gate(
      CellKind::kAnd2, "cdc_seed_mix",
      {victim_d, netlist.cell(src).out});
  netlist.replace_input(victim, 0, netlist.cell(mix).out);
  return check::RuleId::kCdcUnsync;
}

check::RuleId ConversionBackend::seed_rdc_violation(Netlist& netlist) const {
  // Generic plant: pick an existing register-to-register edge and put its
  // two endpoints in different reset domains, with the source's root
  // released no earlier than the destination's — the destination can then
  // capture pre-reset garbage from the source, which A6 must flag.
  const RegisterGraph graph = build_register_graph(netlist);
  for (std::size_t u = 0; u < graph.regs.size(); ++u) {
    for (const int v : graph.fanout[u]) {
      if (static_cast<std::size_t>(v) == u) continue;
      const CellId src_root = netlist.add_input("rdc_seed_rst_late");
      const CellId dst_root = netlist.add_input("rdc_seed_rst_early");
      netlist.declare_reset_root(src_root, /*active_low=*/true,
                                 /*release_order=*/1);
      netlist.declare_reset_root(dst_root, /*active_low=*/true,
                                 /*release_order=*/0);
      netlist.set_reset(graph.regs[u], netlist.cell(src_root).out);
      netlist.set_reset(graph.regs[static_cast<std::size_t>(v)],
                        netlist.cell(dst_root).out);
      return check::RuleId::kRdcCrossing;
    }
  }
  throw Error(cat("seed_rdc_violation: no register-to-register edge in '",
                  netlist.name(), "'"));
}

const std::vector<const ConversionBackend*>& backend_registry() {
  static const FlipFlopBackend ff;
  static const MasterSlaveBackend ms;
  static const ThreePhaseBackend three_phase;
  static const PulsedLatchBackend pulsed;
  static const TwoPhaseBackend two_phase;
  static const DetFfBackend det;
  static const std::vector<const ConversionBackend*> registry = {
      &ff, &ms, &three_phase, &pulsed, &two_phase, &det};
  return registry;
}

const ConversionBackend& backend_for(DesignStyle style) {
  for (const ConversionBackend* backend : backend_registry()) {
    if (backend->id() == style) return *backend;
  }
  throw Error("backend_for: unregistered design style");
}

const ConversionBackend* find_backend(std::string_view token) {
  for (const ConversionBackend* backend : backend_registry()) {
    if (backend->token() == token) return backend;
  }
  return nullptr;
}

std::string backend_token_list() {
  std::string out;
  for (const ConversionBackend* backend : backend_registry()) {
    if (!out.empty()) out += ", ";
    out += backend->token();
  }
  return out;
}

}  // namespace tp::flow
