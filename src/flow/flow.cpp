#include "src/flow/flow.hpp"

#include <algorithm>
#include <future>
#include <memory>
#include <optional>

#include "src/analysis/analysis.hpp"
#include "src/analysis/domains.hpp"
#include "src/flow/backend.hpp"
#include "src/netlist/traverse.hpp"
#include "src/place/placer.hpp"
#include "src/timing/incremental.hpp"
#include "src/util/executor.hpp"

namespace tp::flow {
namespace {

/// Simulates the netlist under every stimulus lane, returning the
/// lane-major concatenation of the per-lane output streams and leaving
/// the summed-over-lanes activity in `activity_out`. With `wide` and at
/// least two lanes, all lanes run bit-parallel in one WideSimulator pass;
/// otherwise the scalar engine runs lane-by-lane. Both paths are
/// bit-identical (the wide engine's contract). A VCD — a per-lane concept
/// — forces the scalar engine and records the first lane only.
OutputStream simulate(const Netlist& netlist, std::span<const Stimulus> lanes,
                      std::size_t warmup, bool wide, std::ostream* vcd,
                      ActivityStats* activity_out) {
  SimOptions options;
  // Single-phase plans update registers at the t=0 event; multi-phase plans
  // (3-phase p1, two-phase slave) open the cycle's first capturing latch at
  // the second event, so the output snapshot waits for it.
  options.snapshot_event = netlist.clocks().phases.size() >= 2 ? 1 : 0;
  if (wide && lanes.size() >= 2 && vcd == nullptr) {
    WideSimulator sim(netlist, lanes.size(), options);
    OutputStream stream = run_wide_stream(sim, pack_stimulus(lanes), warmup);
    if (activity_out) *activity_out = sim.stats();
    return stream;
  }
  Simulator sim(netlist, options);
  OutputStream stream;
  ActivityStats total;
  total.net_toggles.assign(netlist.num_nets(), 0);
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    if (l == 0 && vcd != nullptr) sim.start_vcd(*vcd);
    OutputStream s = run_stream(sim, lanes[l], warmup);
    if (l == 0 && vcd != nullptr) sim.stop_vcd();
    stream.insert(stream.end(), std::make_move_iterator(s.begin()),
                  std::make_move_iterator(s.end()));
    for (std::size_t n = 0; n < netlist.num_nets(); ++n) {
      total.net_toggles[n] += sim.stats().net_toggles[n];
    }
    total.cycles += sim.stats().cycles;
  }
  if (activity_out) *activity_out = std::move(total);
  return stream;
}

}  // namespace

FlowOptions FlowOptions::paper_defaults() { return {}; }

FlowOptions FlowOptions::fast() {
  FlowOptions options;
  options.retime = false;
  options.retime_master_slave = false;
  options.ddcg = false;
  options.hold_repair = false;
  options.warmup_cycles = 8;
  return options;
}

FlowOptions FlowOptions::no_gating() {
  FlowOptions options;
  options.p2_common_enable_cg = false;
  options.use_m1 = false;
  options.use_m2 = false;
  options.ddcg = false;
  return options;
}

std::string_view style_name(DesignStyle style) {
  return backend_for(style).display_name();
}

FlowResult run_flow(const circuits::Benchmark& benchmark, DesignStyle style,
                    const Stimulus& stimulus, const FlowOptions& options) {
  return run_flow(benchmark, style, std::span<const Stimulus>(&stimulus, 1),
                  options);
}

FlowResult run_flow(const circuits::Benchmark& benchmark, DesignStyle style,
                    std::span<const Stimulus> lanes,
                    const FlowOptions& options) {
  require(!lanes.empty() && lanes.size() <= kMaxSimLanes,
          "run_flow: stimulus lane count must be in [1, 64]");
  const ConversionBackend& backend = backend_for(style);
  CellLibrary library = CellLibrary::nominal_28nm();
  backend.adjust_library(library);
  FlowResult result;
  result.style = style;
  Stopwatch step;

  // SEC checkpoint: prove the working netlist still matches the input FF
  // design. The stage hook runs first so tests can inject a fault "inside"
  // a stage and assert the checkpoint blames it. Callers must reset `step`
  // afterwards — checkpoint time is accounted to times.equiv_s, not to the
  // surrounding stage.
  Netlist netlist = benchmark.netlist;
  // The lint cap must track the flow's own DDCG configuration, otherwise a
  // deliberately wider flow would flag its own output.
  check::CheckOptions lint_options = options.lint;
  lint_options.ddcg_max_fanout = std::max(lint_options.ddcg_max_fanout,
                                          options.ddcg_options.max_fanout);
  analysis::AnalysisOptions analysis_options;
  analysis_options.check = lint_options;
  analysis_options.timing = options.timing;
  analysis_options.borrow_budget_ps = options.borrow_budget_ps;
  // Runs the opt-in checkpoint lints on one stage snapshot: structural
  // rules, dataflow analyses, or both merged into one report.
  const auto lint_stage = [check_rules = options.check_rules,
                           check_analysis = options.check_analysis,
                           lint_options,
                           analysis_options](const Netlist& snapshot) {
    check::CheckReport report;
    if (check_rules) report = check::run_checks(snapshot, lint_options);
    if (check_analysis) {
      report.merge(analysis::run_analysis(snapshot, analysis_options));
    }
    return report;
  };
  // Inline analysis checkpoints run through an incremental session: the
  // mutation journal scopes each re-analysis to the stage's dirty cone
  // (byte-identical to the full pass — see docs/analysis.md). The executor
  // path snapshots instead, so it keeps the full per-snapshot analysis.
  std::optional<analysis::AnalysisSession> analysis_session;
  if (options.check_analysis && options.incremental_analysis &&
      options.executor == nullptr) {
    netlist.enable_journal();
    analysis_session.emplace(analysis_options);
  }
  // With an executor, each checkpoint snapshots the stage output and runs
  // the (pure, read-only) checks as pool tasks that overlap with the rest
  // of the flow; the futures are joined in stage order before run_flow()
  // returns, so the result is identical to the inline path.
  std::vector<std::future<StageCheck>> equiv_futures;
  std::vector<std::future<StageLint>> lint_futures;
  // If the flow unwinds with checkpoints still in flight, settle them
  // before the stack frames their lambdas reference go away. The normal
  // path consumes (moves out) every future, leaving nothing to join here.
  struct PendingChecks {
    std::vector<std::future<StageCheck>>* equiv;
    std::vector<std::future<StageLint>>* lint;
    util::Executor* executor;
    ~PendingChecks() {
      for (auto& future : *equiv) {
        if (!future.valid()) continue;
        try {
          executor->wait(std::move(future));
        } catch (...) {  // already unwinding; the flow's error wins
        }
      }
      for (auto& future : *lint) {
        if (!future.valid()) continue;
        try {
          executor->wait(std::move(future));
        } catch (...) {
        }
      }
    }
  } pending_checks{&equiv_futures, &lint_futures, options.executor};
  const auto checkpoint = [&](std::string_view stage) {
    if (options.stage_hook) options.stage_hook(netlist, stage);
    if (!options.check_equivalence && !options.check_rules &&
        !options.check_analysis) {
      return;
    }
    if (options.executor != nullptr) {
      auto snapshot = std::make_shared<const Netlist>(netlist);
      if (options.check_equivalence) {
        equiv_futures.push_back(options.executor->submit(
            [snapshot, stage = std::string(stage),
             golden = &benchmark.netlist, sec = options.sec]() {
              Stopwatch watch;
              StageCheck check;
              check.stage = stage;
              check.result =
                  equiv::check_sequential_equivalence(*golden, *snapshot, sec);
              check.seconds = watch.seconds();
              return check;
            }));
      }
      if (options.check_rules || options.check_analysis) {
        lint_futures.push_back(options.executor->submit(
            [snapshot, stage = std::string(stage), lint_stage]() {
              Stopwatch watch;
              StageLint lint;
              lint.stage = stage;
              lint.report = lint_stage(*snapshot);
              lint.seconds = watch.seconds();
              return lint;
            }));
      }
      return;
    }
    if (options.check_equivalence) {
      Stopwatch watch;
      StageCheck check;
      check.stage = std::string(stage);
      check.result = equiv::check_sequential_equivalence(
          benchmark.netlist, netlist, options.sec);
      check.seconds = watch.seconds();
      result.times.equiv_s += check.seconds;
      result.equiv.stages.push_back(std::move(check));
    }
    if (options.check_rules || options.check_analysis) {
      Stopwatch watch;
      StageLint lint;
      lint.stage = std::string(stage);
      if (analysis_session.has_value()) {
        if (options.check_rules) {
          lint.report = check::run_checks(netlist, lint_options);
        }
        lint.report.merge(
            analysis_session->reanalyze(netlist, netlist.take_touched()));
      } else {
        lint.report = lint_stage(netlist);
      }
      lint.seconds = watch.seconds();
      result.times.lint_s += lint.seconds;
      result.lint.stages.push_back(std::move(lint));
    }
  };

  // 1. "Synthesis": lower enables to the configured clock-gating style.
  result.synthesis_cg = infer_clock_gating(netlist, options.synthesis_cg);
  result.buffering = buffer_high_fanout(netlist, options.buffering);
  result.times.synthesis_s = step.seconds();
  checkpoint("synthesis");
  step.reset();

  // 2. Conversion: dispatch to the style's registered backend
  // (src/flow/backend.hpp). The backend runs its whole conversion segment —
  // including style-specific retiming and clock-gating stages — calling
  // `checkpoint` after each stage and accounting times itself. The activity
  // hook simulates the *current* working netlist (DDCG's data dependence);
  // always eligible for the wide engine — the VCD option applies to the
  // final validation simulation only.
  FlowContext ctx{
      .netlist = netlist,
      .options = options,
      .library = library,
      .result = result,
      .checkpoint = checkpoint,
      .activity =
          [&]() {
            ActivityStats activity;
            simulate(netlist, lanes, options.warmup_cycles, options.wide_sim,
                     nullptr, &activity);
            return activity;
          },
  };
  backend.convert(ctx);
  step.reset();

  // 3. Hold repair, then timing signoff (accounted separately: hold_s is
  // buffer insertion work, timing_s is the STA pass). One incremental
  // session spans both: repair passes after the first re-time only the
  // cones of the buffers just inserted, and the signoff patches from the
  // repaired state instead of running a sixth cold STA.
  std::optional<IncrementalTimer> timer;
  if (options.incremental_timing) {
    netlist.enable_journal();
    timer.emplace(library, options.timing);
  }
  if (options.hold_repair) {
    result.hold = repair_hold(netlist, library, options.timing, 10,
                              timer ? &*timer : nullptr);
    result.times.hold_s = step.seconds();
    checkpoint("hold-repair");
    step.reset();
  }
  result.timing = timer ? timer->sync(netlist)
                        : check_timing(netlist, library, options.timing);
  result.times.timing_s += step.seconds();
  if (timer) {
    result.times.sta_full_s = timer->stats().full_seconds;
    result.times.sta_incremental_s = timer->stats().incremental_seconds;
  } else {
    result.times.sta_full_s = result.hold.sta_full_s + result.times.timing_s;
  }
  step.reset();

  // 4. Physical design: place, then one clock tree per phase. Both stages
  // parallelize internally on the flow's pool (bit-identical to serial —
  // their options document the contract).
  PlaceOptions place_options = options.place;
  place_options.executor = options.executor;
  const Placement placement = place(netlist, library, place_options);
  result.times.place_s = step.seconds();
  step.reset();
  CtsOptions cts_options = options.cts;
  cts_options.executor = options.executor;
  const ClockTreeReport clock_tree =
      synthesize_clock_trees(netlist, placement, cts_options);
  result.times.cts_s = step.seconds();
  step.reset();

  // 5. Gate-level simulation: validation stream + power activity.
  ActivityStats activity;
  result.outputs = simulate(netlist, lanes, options.warmup_cycles,
                            options.wide_sim, options.vcd, &activity);
  result.times.sim_s = step.seconds();

  // 6. Metrics.
  result.registers = static_cast<int>(netlist.registers().size());
  result.area_um2 = library.total_area_um2(netlist) +
                    clock_tree.buffer_area_um2(library);
  result.power =
      compute_power(netlist, library, activity, &placement, &clock_tree);
  result.netlist = std::move(netlist);

  // Join the fanned-out checkpoints (no-ops on the inline path). wait()
  // helps — a worker running this flow as a matrix task executes pending
  // checks itself instead of blocking the pool.
  for (std::future<StageCheck>& future : equiv_futures) {
    StageCheck check = options.executor->wait(std::move(future));
    result.times.equiv_s += check.seconds;
    result.equiv.stages.push_back(std::move(check));
  }
  for (std::future<StageLint>& future : lint_futures) {
    StageLint lint = options.executor->wait(std::move(future));
    result.times.lint_s += lint.seconds;
    result.lint.stages.push_back(std::move(lint));
  }
  return result;
}

std::string StreamDiff::to_string() const {
  if (equal()) return "output streams identical";
  return "outputs diverge at cycle " + std::to_string(cycle) + " on '" +
         output_name + "': expected " + (expected ? "1" : "0") + ", got " +
         (got ? "1" : "0");
}

StreamDiff equivalent(const FlowResult& a, const FlowResult& b) {
  StreamDiff diff;
  diff.cycle = first_mismatch(a.outputs, b.outputs);
  if (diff.cycle < 0) return diff;
  const auto& row_a = a.outputs[diff.cycle];
  const auto& row_b = b.outputs[diff.cycle];
  const std::size_t width = std::min(row_a.size(), row_b.size());
  diff.output = width;  // row-length mismatch unless a cell differs below
  for (std::size_t j = 0; j < width; ++j) {
    if (row_a[j] != row_b[j]) {
      diff.output = j;
      diff.expected = row_a[j] != 0;
      diff.got = row_b[j] != 0;
      break;
    }
  }
  const auto& outs = a.netlist.outputs();
  if (diff.output < outs.size()) {
    diff.output_name = a.netlist.cell(outs[diff.output]).name;
  }
  return diff;
}

}  // namespace tp::flow
