#include "src/flow/serialize.hpp"

#include <cstdio>

#include "src/analysis/domains.hpp"
#include "src/util/hash.hpp"
#include "src/util/json.hpp"
#include "src/util/strcat.hpp"

namespace tp::flow {
namespace {

std::string hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

bool style_from_name(std::string_view text, DesignStyle* style) {
  // The backend registry is the single source of truth for tokens; every
  // registered backend is reachable from every serialized surface.
  const ConversionBackend* backend = find_backend(text);
  if (backend == nullptr) return false;
  *style = backend->id();
  return true;
}

std::string_view style_token(DesignStyle style) {
  return backend_for(style).token();
}

bool options_from_preset(std::string_view name, FlowOptions* options) {
  if (name == "paper") *options = FlowOptions::paper_defaults();
  else if (name == "fast") *options = FlowOptions::fast();
  else if (name == "no-gating") *options = FlowOptions::no_gating();
  else return false;
  return true;
}

bool workload_from_name(std::string_view text,
                        circuits::Workload* workload) {
  if (text == "paper") *workload = circuits::Workload::kPaperDefault;
  else if (text == "dhrystone") *workload = circuits::Workload::kDhrystone;
  else if (text == "coremark") *workload = circuits::Workload::kCoremark;
  else return false;
  return true;
}

std::string options_fingerprint(const FlowOptions& o) {
  // Every field that changes a FlowResult, in a fixed order. Excluded on
  // purpose: executor, vcd, stage_hook (observation hooks) and the lint
  // waiver set (verdict presentation, not flow output). Bump the leading
  // version tag when the flow grows result-affecting options that default
  // to old behavior, so old fingerprints stay honest.
  return cat(
      "flowopts-v3",
      " cg=", static_cast<int>(o.synthesis_cg.style),
      ",", o.synthesis_cg.min_icg_group,
      " buf=", o.buffering.max_fanout,
      " assign=", static_cast<int>(o.assign.method),
      ",", o.assign.time_limit_s,
      " retime=", o.retime, ",", o.retime_master_slave,
      " p2cg=", o.p2_common_enable_cg,
      " m1=", o.use_m1, " m2=", o.use_m2,
      " ddcg=", o.ddcg, ",", o.ddcg_options.toggle_threshold,
      ",", o.ddcg_options.max_fanout, ",", o.ddcg_options.use_m1,
      " hold=", o.hold_repair,
      " pl=", o.pulsed_latch.pulse_width_ps, ",", o.pulsed_latch.group_size,
      " 2p=", o.two_phase.nonoverlap_ps,
      " timing=", o.timing.hold_uncertainty_ps, ",", o.timing.input_delay_ps,
      ",", o.timing.output_setup_ps, ",", o.timing.max_iterations,
      " place=", o.place.utilization, ",", o.place.fm_threshold,
      ",", o.place.leaf_size, ",", o.place.seed,
      " cts=", o.cts.max_fanout,
      " warmup=", o.warmup_cycles,
      " wide=", o.wide_sim,
      " sec=", o.check_equivalence,
      " lint=", o.check_rules, ",", o.lint.ddcg_max_fanout,
      " analysis=", o.check_analysis, ",", o.borrow_budget_ps);
}

std::uint64_t options_hash(const FlowOptions& options) {
  return util::fnv1a(options_fingerprint(options));
}

std::string result_payload_json(const RunPlan& plan,
                                const MatrixResult& r) {
  util::JsonWriter w;
  w.begin_object();
  w.key("benchmark").value(r.task.benchmark);
  w.key("style").value(style_token(r.task.style));
  w.key("workload").value(circuits::workload_name(plan.workload));
  w.key("cycles").value(plan.cycles);
  // Hex string: a 64-bit derived seed does not survive a JSON double.
  w.key("seed").value(hex16(r.task.seed));
  w.key("lanes").value(plan.lanes);
  w.key("ok").value(r.ok());
  if (!r.ok()) {
    w.key("error").value(r.error);
    w.end_object();
    return w.take();
  }
  const FlowResult& f = r.result;
  w.key("registers").value(f.registers);
  w.key("area_um2").value(f.area_um2);
  w.key("power_mw").begin_object();
  w.key("clock").value(f.power.clock_mw);
  w.key("seq").value(f.power.seq_mw);
  w.key("comb").value(f.power.comb_mw);
  w.key("leakage").value(f.power.leakage_mw);
  w.key("total").value(f.power.total_mw());
  w.end_object();
  w.key("stream_hash").value(hex16(stream_hash(f.outputs)));
  w.key("stream_rows").value(f.outputs.size());
  w.key("inserted_p2").value(f.inserted_p2);
  w.key("duplicated_icgs").value(f.duplicated_icgs);
  w.key("pulse_generators").value(f.pulse_generators);
  w.key("dividers").value(f.dividers);
  w.key("timing_converged").value(f.timing.converged);
  if (!f.equiv.stages.empty()) {
    w.key("sec_proven").value(f.equiv.all_proven());
  }
  if (!f.lint.stages.empty()) {
    w.key("lint_clean").value(f.lint.all_clean());
    w.key("lint_stages").begin_array();
    for (const StageLint& s : f.lint.stages) {
      w.begin_object();
      w.key("stage").value(s.stage);
      w.key("errors").value(s.report.errors);
      w.key("warnings").value(s.report.warnings);
      w.key("infos").value(s.report.infos);
      w.key("waived").value(s.report.waived);
      w.end_object();
    }
    w.end_array();
    if (const StageLint* first = f.lint.first_violation()) {
      w.key("lint_first_violation").value(first->stage);
    }
    // Clock/reset-domain summary of the final netlist (full table via
    // lint_cli --domains); forwarded by serve::lint_payload().
    w.key("domains").raw(
        analysis::domain_summary_json(analysis::infer_domains(f.netlist)));
  }
  w.end_object();
  return w.take();
}

}  // namespace tp::flow
