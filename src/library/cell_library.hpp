// Synthetic 28-nm-class standard-cell library.
//
// The paper evaluates on an industrial 28-nm FDSOI library; this module
// provides a stand-in with the relative characteristics that drive the
// paper's results: latches are roughly half the area of flip-flops, have
// lower clock-pin capacitance and lower internal clock energy, and the
// modified clock-gating cells (M1 without the inverter, M2 without the
// latch) are cheaper than the conventional ICG.
//
// Units: area um^2, capacitance fF, time ps, leakage nW, energy fJ.
// Delay model: NLDM-style linear  d = intrinsic + slope * load_fF.
#pragma once

#include <array>

#include "src/netlist/netlist.hpp"

namespace tp {

struct CellParams {
  double area_um2 = 0;
  double input_cap_ff = 0;    // data input pins
  double clock_cap_ff = 0;    // clock/gate pin (sequential & clock cells)
  double intrinsic_ps = 0;    // unloaded delay (clk->q for FFs, d->q for
                              // transparent latches, in->out otherwise)
  double slope_ps_per_ff = 0; // delay per fF of output load
  double leakage_nw = 0;
  double switch_energy_fj = 0;  // internal energy per output toggle
  double clock_energy_fj = 0;   // internal energy per clock edge (seq/ICG)
  // Sequential constraints (registers only).
  double setup_ps = 0;
  double hold_ps = 0;
};

class CellLibrary {
 public:
  /// The default library used by every experiment. Values are synthetic but
  /// keep the latch-vs-FF and ICG-variant ratios reported in the literature
  /// for 28-nm-class processes.
  static const CellLibrary& nominal_28nm();

  [[nodiscard]] const CellParams& params(CellKind kind) const {
    return params_[static_cast<int>(kind)];
  }

  [[nodiscard]] double voltage() const { return voltage_; }

  /// Energy for one full swing of `cap_ff` femtofarads: C * V^2 / 2 (fJ).
  [[nodiscard]] double net_switch_energy_fj(double cap_ff) const {
    return 0.5 * cap_ff * voltage_ * voltage_;
  }

  /// Gate delay under `load_ff` of output load.
  [[nodiscard]] double delay_ps(CellKind kind, double load_ff) const {
    const CellParams& p = params(kind);
    return p.intrinsic_ps + p.slope_ps_per_ff * load_ff;
  }

  /// Capacitance presented by input pin `pin` of a `kind` cell.
  [[nodiscard]] double pin_cap_ff(CellKind kind, int pin) const {
    const CellParams& p = params(kind);
    return pin == clock_pin(kind) ? p.clock_cap_ff : p.input_cap_ff;
  }

  /// Default wire capacitance added per fanout pin when no placement-based
  /// wire model is supplied (fF).
  [[nodiscard]] double default_wire_cap_per_fanout_ff() const {
    return wire_cap_per_fanout_ff_;
  }

  /// Wire capacitance per micron of routed length (fF/um), used with the
  /// placement-based wireload model.
  [[nodiscard]] double wire_cap_per_um_ff() const { return wire_cap_per_um_; }

  /// Total area of all live cells in `netlist`.
  [[nodiscard]] double total_area_um2(const Netlist& netlist) const;

  /// Total load on `net`: fanout pin caps plus the default wire cap model.
  [[nodiscard]] double net_load_ff(const Netlist& netlist, NetId net) const;

  CellLibrary();  // zero-initialized; use nominal_28nm() for real values

  /// Overrides one kind's parameters (custom / ablation libraries).
  void set_params(CellKind kind, const CellParams& p) {
    params_[static_cast<int>(kind)] = p;
  }

 private:
  std::array<CellParams, kNumCellKinds> params_{};
  double voltage_ = 0.9;
  double wire_cap_per_fanout_ff_ = 1.4;
  double wire_cap_per_um_ = 0.20;
};

}  // namespace tp
