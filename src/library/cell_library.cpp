#include "src/library/cell_library.hpp"

namespace tp {

CellLibrary::CellLibrary() = default;

namespace {

CellLibrary make_nominal_28nm() {
  CellLibrary lib;
  auto set = [&lib](CellKind kind, CellParams p) { lib.set_params(kind, p); };

  // Interface pseudo-cells: free.
  set(CellKind::kInput, {});
  set(CellKind::kOutput, {.input_cap_ff = 0.6});
  set(CellKind::kConst0, {});
  set(CellKind::kConst1, {});

  // Combinational gates.
  set(CellKind::kBuf, {.area_um2 = 0.78, .input_cap_ff = 0.9,
                       .intrinsic_ps = 34, .slope_ps_per_ff = 2.1,
                       .leakage_nw = 1.2, .switch_energy_fj = 0.35});
  set(CellKind::kInv, {.area_um2 = 0.49, .input_cap_ff = 0.9,
                       .intrinsic_ps = 17, .slope_ps_per_ff = 1.8,
                       .leakage_nw = 0.9, .switch_energy_fj = 0.24});
  set(CellKind::kAnd2, {.area_um2 = 0.98, .input_cap_ff = 1.0,
                        .intrinsic_ps = 42, .slope_ps_per_ff = 2.3,
                        .leakage_nw = 1.6, .switch_energy_fj = 0.52});
  set(CellKind::kAnd3, {.area_um2 = 1.22, .input_cap_ff = 1.0,
                        .intrinsic_ps = 50, .slope_ps_per_ff = 2.5,
                        .leakage_nw = 1.9, .switch_energy_fj = 0.62});
  set(CellKind::kOr2, {.area_um2 = 0.98, .input_cap_ff = 1.0,
                       .intrinsic_ps = 44, .slope_ps_per_ff = 2.3,
                       .leakage_nw = 1.6, .switch_energy_fj = 0.52});
  set(CellKind::kOr3, {.area_um2 = 1.22, .input_cap_ff = 1.0,
                       .intrinsic_ps = 53, .slope_ps_per_ff = 2.5,
                       .leakage_nw = 1.9, .switch_energy_fj = 0.62});
  set(CellKind::kNand2, {.area_um2 = 0.78, .input_cap_ff = 1.0,
                         .intrinsic_ps = 27, .slope_ps_per_ff = 2.0,
                         .leakage_nw = 1.4, .switch_energy_fj = 0.40});
  set(CellKind::kNand3, {.area_um2 = 1.08, .input_cap_ff = 1.1,
                         .intrinsic_ps = 34, .slope_ps_per_ff = 2.3,
                         .leakage_nw = 1.7, .switch_energy_fj = 0.50});
  set(CellKind::kNor2, {.area_um2 = 0.78, .input_cap_ff = 1.0,
                        .intrinsic_ps = 30, .slope_ps_per_ff = 2.2,
                        .leakage_nw = 1.4, .switch_energy_fj = 0.42});
  set(CellKind::kNor3, {.area_um2 = 1.08, .input_cap_ff = 1.1,
                        .intrinsic_ps = 38, .slope_ps_per_ff = 2.5,
                        .leakage_nw = 1.7, .switch_energy_fj = 0.52});
  set(CellKind::kXor2, {.area_um2 = 1.47, .input_cap_ff = 1.3,
                        .intrinsic_ps = 54, .slope_ps_per_ff = 2.7,
                        .leakage_nw = 2.2, .switch_energy_fj = 0.88});
  set(CellKind::kXnor2, {.area_um2 = 1.47, .input_cap_ff = 1.3,
                         .intrinsic_ps = 55, .slope_ps_per_ff = 2.7,
                         .leakage_nw = 2.2, .switch_energy_fj = 0.88});
  set(CellKind::kMux2, {.area_um2 = 1.57, .input_cap_ff = 1.1,
                        .intrinsic_ps = 49, .slope_ps_per_ff = 2.6,
                        .leakage_nw = 2.0, .switch_energy_fj = 0.80});
  set(CellKind::kAoi21, {.area_um2 = 1.18, .input_cap_ff = 1.1,
                         .intrinsic_ps = 37, .slope_ps_per_ff = 2.4,
                         .leakage_nw = 1.8, .switch_energy_fj = 0.55});
  set(CellKind::kOai21, {.area_um2 = 1.18, .input_cap_ff = 1.1,
                         .intrinsic_ps = 38, .slope_ps_per_ff = 2.4,
                         .leakage_nw = 1.8, .switch_energy_fj = 0.55});
  set(CellKind::kMaj3, {.area_um2 = 1.76, .input_cap_ff = 1.2,
                        .intrinsic_ps = 58, .slope_ps_per_ff = 2.8,
                        .leakage_nw = 2.4, .switch_energy_fj = 0.98});

  // Sequential cells. A D flip-flop is internally a master-slave latch
  // pair plus local clock inverters, so a single transparent latch costs
  // roughly half of it across the board: area ~0.56, clock-pin cap ~0.45,
  // internal clock energy ~0.44, data switching ~0.47. The absolute FF
  // clock energy (2.4 fJ/edge incl. local clock buffering) is calibrated so
  // the FF baseline reproduces the clock-network share of total power the
  // paper reports (e.g. s35932: 11.5 of 18.5 mW); the latch/FF ratios are
  // the physical lever behind the register and clock-tree savings.
  set(CellKind::kDff, {.area_um2 = 4.61, .input_cap_ff = 1.0,
                       .clock_cap_ff = 1.10, .intrinsic_ps = 84,
                       .slope_ps_per_ff = 2.6, .leakage_nw = 6.5,
                       .switch_energy_fj = 1.80, .clock_energy_fj = 2.40,
                       .setup_ps = 35, .hold_ps = 8});
  set(CellKind::kDffEn, {.area_um2 = 5.78, .input_cap_ff = 1.0,
                         .clock_cap_ff = 1.15, .intrinsic_ps = 88,
                         .slope_ps_per_ff = 2.6, .leakage_nw = 8.1,
                         .switch_energy_fj = 2.00, .clock_energy_fj = 2.60,
                         .setup_ps = 38, .hold_ps = 8});
  set(CellKind::kLatchH, {.area_um2 = 2.59, .input_cap_ff = 0.9,
                          .clock_cap_ff = 0.50, .intrinsic_ps = 46,
                          .slope_ps_per_ff = 2.4, .leakage_nw = 3.0,
                          .switch_energy_fj = 0.85, .clock_energy_fj = 1.05,
                          .setup_ps = 28, .hold_ps = 12});
  set(CellKind::kLatchL, {.area_um2 = 2.59, .input_cap_ff = 0.9,
                          .clock_cap_ff = 0.50, .intrinsic_ps = 46,
                          .slope_ps_per_ff = 2.4, .leakage_nw = 3.0,
                          .switch_energy_fj = 0.85, .clock_energy_fj = 1.05,
                          .setup_ps = 28, .hold_ps = 12});

  // Pulsed latch: latch-class cost plus margin for the sharpened clock
  // edge requirements.
  set(CellKind::kLatchP, {.area_um2 = 2.71, .input_cap_ff = 0.9,
                          .clock_cap_ff = 0.55, .intrinsic_ps = 52,
                          .slope_ps_per_ff = 2.4, .leakage_nw = 3.2,
                          .switch_energy_fj = 0.92, .clock_energy_fj = 1.15,
                          .setup_ps = 30, .hold_ps = 14});

  // Clock-gating and clock-tree cells (Fig. 3(c0)-(c2)): M1 drops the
  // inverter, M2 drops the internal latch.
  set(CellKind::kIcg, {.area_um2 = 3.82, .input_cap_ff = 1.0,
                       .clock_cap_ff = 1.10, .intrinsic_ps = 45,
                       .slope_ps_per_ff = 1.6, .leakage_nw = 4.8,
                       .switch_energy_fj = 0.70, .clock_energy_fj = 1.50});
  set(CellKind::kIcgM1, {.area_um2 = 3.43, .input_cap_ff = 1.0,
                         .clock_cap_ff = 1.05, .intrinsic_ps = 42,
                         .slope_ps_per_ff = 1.6, .leakage_nw = 4.2,
                         .switch_energy_fj = 0.62, .clock_energy_fj = 1.30});
  set(CellKind::kIcgNoLatch, {.area_um2 = 1.18, .input_cap_ff = 1.0,
                              .clock_cap_ff = 1.00, .intrinsic_ps = 29,
                              .slope_ps_per_ff = 1.5, .leakage_nw = 1.8,
                              .switch_energy_fj = 0.45,
                              .clock_energy_fj = 0.70});
  set(CellKind::kClkBuf, {.area_um2 = 1.27, .input_cap_ff = 1.2,
                          .clock_cap_ff = 1.2, .intrinsic_ps = 31,
                          .slope_ps_per_ff = 1.2, .leakage_nw = 2.1,
                          .switch_energy_fj = 0.48});
  set(CellKind::kClkInv, {.area_um2 = 0.69, .input_cap_ff = 1.1,
                          .clock_cap_ff = 1.1, .intrinsic_ps = 19,
                          .slope_ps_per_ff = 1.1, .leakage_nw = 1.4,
                          .switch_energy_fj = 0.30});

  // Dual-edge-triggered FF (arXiv 1307.3075): two parallel sampling paths
  // cost ~25% extra area/leakage and a higher per-edge clock energy, but
  // the cell sees half the clock-pin edges (one toggle per cycle through
  // kClkDiv2), so its clocking energy per cycle still undercuts the DFF
  // (2 x 2.40 = 4.80 vs 1 x 3.10 fJ).
  set(CellKind::kDffDet, {.area_um2 = 5.76, .input_cap_ff = 1.1,
                          .clock_cap_ff = 1.25, .intrinsic_ps = 92,
                          .slope_ps_per_ff = 2.7, .leakage_nw = 8.2,
                          .switch_energy_fj = 1.95, .clock_energy_fj = 3.10,
                          .setup_ps = 38, .hold_ps = 10});
  // Divide-by-two: a toggle latch pair on the clock path, shared by every
  // register of one gated clock net.
  set(CellKind::kClkDiv2, {.area_um2 = 3.10, .input_cap_ff = 1.1,
                           .clock_cap_ff = 1.10, .intrinsic_ps = 55,
                           .slope_ps_per_ff = 1.4, .leakage_nw = 4.0,
                           .switch_energy_fj = 0.80,
                           .clock_energy_fj = 1.20});
  return lib;
}

}  // namespace

const CellLibrary& CellLibrary::nominal_28nm() {
  static const CellLibrary lib = make_nominal_28nm();
  return lib;
}

double CellLibrary::total_area_um2(const Netlist& netlist) const {
  double area = 0;
  for (CellId id : netlist.live_cells()) {
    area += params(netlist.cell(id).kind).area_um2;
  }
  return area;
}

double CellLibrary::net_load_ff(const Netlist& netlist, NetId net_id) const {
  const Net& net = netlist.net(net_id);
  double load = 0;
  for (const PinRef& ref : net.fanouts) {
    load += pin_cap_ff(netlist.cell(ref.cell).kind,
                       static_cast<int>(ref.pin));
    load += wire_cap_per_fanout_ff_;
  }
  return load;
}

}  // namespace tp
