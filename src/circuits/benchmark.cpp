#include "src/circuits/benchmark.hpp"

#include <algorithm>

#include "src/util/strcat.hpp"

namespace tp::circuits {
namespace {

struct Entry {
  const char* name;
  const char* suite;
  std::int64_t period_ps;
  const char* workload;
};

// Table I/II order; frequencies per Sec. V (ISCAS 1 GHz, CEP and Plasma
// 500 MHz, RISC-V and ARM-M0 333.3 MHz).
constexpr Entry kEntries[] = {
    {"s1196", "ISCAS", 1000, "pseudo-random"},
    {"s1238", "ISCAS", 1000, "pseudo-random"},
    {"s1423", "ISCAS", 1000, "pseudo-random"},
    {"s1488", "ISCAS", 1000, "pseudo-random"},
    {"s5378", "ISCAS", 1000, "pseudo-random"},
    {"s9234", "ISCAS", 1000, "pseudo-random"},
    {"s13207", "ISCAS", 1000, "pseudo-random"},
    {"s15850", "ISCAS", 1000, "pseudo-random"},
    {"s35932", "ISCAS", 1000, "pseudo-random"},
    {"s38417", "ISCAS", 1000, "pseudo-random"},
    {"s38584", "ISCAS", 1000, "pseudo-random"},
    {"AES", "CEP", 2000, "self-check"},
    {"DES3", "CEP", 2000, "self-check"},
    {"SHA256", "CEP", 2000, "self-check"},
    {"MD5", "CEP", 2000, "self-check"},
    {"Plasma", "CPU", 2000, "pi"},
    {"RISCV", "CPU", 3000, "rv32ui-v-simple"},
    {"ArmM0", "CPU", 3000, "hello world"},
};

}  // namespace

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    for (const Entry& e : kEntries) v.emplace_back(e.name);
    return v;
  }();
  return names;
}

Benchmark make_benchmark(const std::string& name) {
  const auto it =
      std::find_if(std::begin(kEntries), std::end(kEntries),
                   [&](const Entry& e) { return name == e.name; });
  require(it != std::end(kEntries), cat("unknown benchmark ", name));
  Benchmark benchmark{.name = it->name,
                      .suite = it->suite,
                      .netlist = Netlist(it->name),
                      .period_ps = it->period_ps,
                      .paper_workload = it->workload};
  if (benchmark.suite == "ISCAS") {
    benchmark.netlist = make_iscas(name, it->period_ps);
  } else if (benchmark.suite == "CEP") {
    benchmark.netlist = make_cep(name, it->period_ps);
  } else {
    benchmark.netlist = make_cpu(name, it->period_ps);
  }
  return benchmark;
}

}  // namespace tp::circuits
