// CPU-class generators: Plasma-like 3-stage MIPS, Rocket-like RISC-V, and
// Cortex-M0-like cores.
//
// The structures that matter for the conversion are reproduced:
//   - a register file of enable-gated FFs written from the writeback stage
//     and read into the execute stage (no edges among the file's FFs, so
//     the ILP converts nearly all of them to single latches — the source of
//     the CPUs' headline register savings);
//   - pipeline registers with stall enables;
//   - a PC with increment/branch feedback and a small control FSM
//     (genuine combinational feedback, forcing back-to-back latches);
//   - forwarding muxes and a ripple ALU for realistic path depth;
//   - ARM-M0 adds a CPSR-style flags loop (ALU -> flags -> ALU), which is
//     why the paper reports its savings below the other cores'.
#include "src/circuits/benchmark.hpp"
#include <bit>

#include "src/circuits/builder.hpp"
#include "src/util/strcat.hpp"

namespace tp::circuits {
namespace {

struct CpuProfile {
  int xlen;          // datapath width
  int regfile_words;
  int pipe_stages;   // pipeline register banks between stages
  int pipe_width;    // width per pipeline bank
  int csr_bank;      // extra enable-gated storage (CSRs, counters)
  int flags;         // ALU flags loop (0 = none)
  int fsm;           // control FSM bits
};

CpuProfile profile_for(const std::string& name) {
  // Register totals tuned to Table I:
  //   total = xlen (PC) + regfile_words * xlen + pipe_stages * pipe_width
  //           + csr_bank + flags + fsm
  if (name == "Plasma") {
    // 22 + 32 (PC) + 32 (IR) + 1024 + 64 (ID/EX) + 2 * 208 + 16 = 1606
    return {.xlen = 32, .regfile_words = 32, .pipe_stages = 2,
            .pipe_width = 208, .csr_bank = 16, .flags = 0, .fsm = 22};
  }
  if (name == "RISCV") {
    // 27 + 32 (PC) + 32 (IR) + 1024 + 64 (ID/EX) + 4 * 300 + 416 = 2795
    return {.xlen = 32, .regfile_words = 32, .pipe_stages = 4,
            .pipe_width = 300, .csr_bank = 416, .flags = 0, .fsm = 27};
  }
  if (name == "ArmM0") {
    // 17 + 32 (PC) + 32 (IR) + 512 + 64 (ID/EX) + 2 * 320 + 96 + 4 = 1397
    return {.xlen = 32, .regfile_words = 16, .pipe_stages = 2,
            .pipe_width = 320, .csr_bank = 96, .flags = 4, .fsm = 17};
  }
  throw Error(cat("unknown CPU ", name));
}

}  // namespace

Netlist make_cpu(const std::string& name, std::int64_t period_ps) {
  const CpuProfile p = profile_for(name);
  Netlist nl(name);
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(period_ps, nl.cell(clk).out);
  Rng rng(0xC9C ^ std::hash<std::string>{}(name));
  Builder b(nl, nl.cell(clk).out, rng);

  const Bus instr = b.inputs("instr", p.xlen);
  const Bus mem_rdata = b.inputs("mem_rdata", p.xlen);
  const NetId irq = nl.cell(nl.add_input("irq")).out;

  // --- control FSM (feedback cluster) + stall ------------------------------
  Bus fsm_seed(static_cast<std::size_t>(p.fsm), irq);
  std::vector<CellId> fsm_regs;
  Bus fsm_q;
  for (int i = 0; i < p.fsm; ++i) {
    const NetId q = nl.add_net(cat("ctrl", i));
    fsm_regs.push_back(nl.add_cell(CellKind::kDff, cat("ctrl", i),
                                   {fsm_seed[static_cast<std::size_t>(i)],
                                    b.clk()},
                                   q, Phase::kClk));
    fsm_q.push_back(q);
  }
  Bus fsm_src = fsm_q;
  fsm_src.push_back(irq);
  for (int i = 0; i < 4; ++i) {
    fsm_src.push_back(instr[rng.below(instr.size())]);
  }
  const Bus fsm_next = b.random_cloud("ctrl_ns", fsm_src, p.fsm * 4, p.fsm);
  for (int i = 0; i < p.fsm; ++i) {
    nl.replace_input(fsm_regs[static_cast<std::size_t>(i)], 0,
                     fsm_next[static_cast<std::size_t>(i)]);
  }
  const NetId stall = b.gate(CellKind::kNor2, "stall", {fsm_q[0], fsm_q[1]});
  const NetId run = b.gate(CellKind::kInv, "run", {stall});

  // --- fetch: PC with increment / branch feedback --------------------------
  std::vector<CellId> pc_regs;
  Bus pc;
  for (int i = 0; i < p.xlen; ++i) {
    const NetId q = nl.add_net(cat("pc", i));
    pc_regs.push_back(nl.add_cell(CellKind::kDffEn, cat("pc", i),
                                  {instr[static_cast<std::size_t>(i)], run,
                                   b.clk()},
                                  q, Phase::kClk));
    pc.push_back(q);
  }
  const Bus pc_inc = b.incrementer("pc_inc", pc);
  const NetId take_branch =
      b.gate(CellKind::kAnd2, "take_branch", {fsm_q[2 % p.fsm], run});
  const Bus pc_next = b.mux("pc_mux", pc_inc, instr, take_branch);
  for (int i = 0; i < p.xlen; ++i) {
    nl.replace_input(pc_regs[static_cast<std::size_t>(i)], 0,
                     pc_next[static_cast<std::size_t>(i)]);
  }

  // --- decode: instruction register + regfile read --------------------------
  const Bus ir = b.ff_bank_en("ir", instr, run);
  Bus rd_addr(ir.begin(), ir.begin() + 5);
  while (rd_addr.size() >
         static_cast<std::size_t>(std::bit_width(
             static_cast<unsigned>(p.regfile_words)) - 1)) {
    rd_addr.pop_back();
  }
  const Bus wsel = b.decoder("rf_dec", rd_addr);

  // --- register file: one enable-gated word per decoder line ----------------
  // Writeback data is wired after the pipeline exists (placeholder first).
  std::vector<std::vector<CellId>> rf_regs(static_cast<std::size_t>(
      p.regfile_words));
  std::vector<Bus> rf_q(static_cast<std::size_t>(p.regfile_words));
  for (int w = 0; w < p.regfile_words; ++w) {
    const NetId we = b.gate(CellKind::kAnd2, cat("rf_we", w),
                            {wsel[static_cast<std::size_t>(w)], run});
    for (int i = 0; i < p.xlen; ++i) {
      const NetId q = nl.add_net(cat("rf", w, "_", i));
      rf_regs[static_cast<std::size_t>(w)].push_back(
          nl.add_cell(CellKind::kDffEn, cat("rf", w, "_", i),
                      {mem_rdata[static_cast<std::size_t>(i)], we, b.clk()},
                      q, Phase::kClk));
      rf_q[static_cast<std::size_t>(w)].push_back(q);
    }
  }
  // Read ports: balanced mux trees over the file, selected by IR bits
  // (log-depth, like a real register-file read mux).
  auto read_port = [&](const char* port, int sel_base) {
    std::vector<Bus> level = rf_q;
    int stage = 0;
    while (level.size() > 1) {
      std::vector<Bus> next;
      const NetId sel = ir[static_cast<std::size_t>((sel_base + stage) %
                                                    static_cast<int>(
                                                        ir.size()))];
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        next.push_back(b.mux(cat(port, "_", stage, "_", i), level[i],
                             level[i + 1], sel));
      }
      if (level.size() % 2) next.push_back(level.back());
      level = std::move(next);
      ++stage;
    }
    return level.front();
  };
  const Bus rs1 = read_port("rp1", 0);
  const Bus rs2 = read_port("rp2", 7);
  // ID/EX pipeline registers: decode (IR + regfile read) and execute (ALU)
  // are separate stages, as in the real cores.
  const Bus idex_a = b.ff_bank_en("idexa", rs1, run);
  const Bus idex_b = b.ff_bank_en("idexb", rs2, run);

  // --- execute: ALU with forwarding ------------------------------------------
  Bus alu_a = b.mux("fwd_a", idex_a, mem_rdata, fsm_q[3 % p.fsm]);
  Bus alu_b = b.mux("fwd_b", idex_b, ir, fsm_q[4 % p.fsm]);
  const Bus sum = b.adder("alu_add", alu_a, alu_b);
  const Bus logic = b.bitwise(CellKind::kXor2, "alu_xor", alu_a, alu_b);
  Bus alu = b.mux("alu_sel", sum, logic, ir[5 % ir.size()]);

  // ARM-M0 style flags loop: ALU -> flags register -> ALU select.
  if (p.flags > 0) {
    Bus flag_d;
    flag_d.push_back(b.xor_reduce("flag_z", alu));
    flag_d.push_back(alu.back());
    flag_d.push_back(b.gate(CellKind::kAnd2, "flag_c",
                            {sum.back(), alu_a.back()}));
    flag_d.push_back(b.gate(CellKind::kXor2, "flag_v",
                            {sum.back(), alu_b.back()}));
    flag_d.resize(static_cast<std::size_t>(p.flags), flag_d[0]);
    const Bus flags = b.ff_bank("cpsr", flag_d);
    alu = b.mux("flag_mux", alu, Builder::rotate(alu, 1), flags[0]);
  }

  // --- pipeline registers (stall-enabled) ------------------------------------
  Bus stage = alu;
  for (int s = 0; s < p.pipe_stages; ++s) {
    // Pad/trim the bank to pipe_width with recent logic taps.
    Bus d = stage;
    while (static_cast<int>(d.size()) < p.pipe_width) {
      d.push_back(stage[rng.below(stage.size())]);
    }
    d.resize(static_cast<std::size_t>(p.pipe_width));
    stage = b.ff_bank_en(cat("pipe", s), d, run);
    // Per-stage logic between banks.
    stage = b.mix_layer(cat("pipe", s, "_logic"), stage, 4);
  }

  // --- CSRs / counters: enable-gated storage ---------------------------------
  Bus csr;
  for (int i = 0; i < p.csr_bank; ++i) {
    const NetId q = nl.add_net(cat("csr", i));
    nl.add_cell(CellKind::kDffEn, cat("csr", i),
                {stage[static_cast<std::size_t>(i) % stage.size()],
                 fsm_q[static_cast<std::size_t>(i) % fsm_q.size()], b.clk()},
                q, Phase::kClk);
    csr.push_back(q);
  }

  // --- outputs ---------------------------------------------------------------
  b.outputs("mem_addr", Bus(pc.begin(), pc.end()));
  Bus dout(stage.begin(),
           stage.begin() + std::min<std::size_t>(stage.size(), 32));
  for (std::size_t i = 0; i < dout.size() && i < csr.size(); ++i) {
    dout[i] = b.gate(CellKind::kXor2, cat("dout_mix", i),
                     {dout[i], csr[i]});
  }
  b.outputs("mem_wdata", dout);
  nl.validate();
  return nl;
}

}  // namespace tp::circuits
