// Structural building blocks shared by the benchmark generators: buses,
// register banks (with and without enables), ripple adders, decoders,
// muxes, XOR mixing layers, and random logic clouds.
//
// Everything is deterministic for a given Rng so each named benchmark is
// bit-identical across runs.
#pragma once

#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/util/rng.hpp"

namespace tp::circuits {

using Bus = std::vector<NetId>;

class Builder {
 public:
  Builder(Netlist& netlist, NetId clk, Rng& rng)
      : nl_(netlist), clk_(clk), rng_(rng) {}

  [[nodiscard]] Netlist& netlist() { return nl_; }
  [[nodiscard]] NetId clk() const { return clk_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// `width` primary inputs named prefix0..prefixN.
  Bus inputs(const std::string& prefix, int width);

  /// Primary outputs for every net of the bus.
  void outputs(const std::string& prefix, const Bus& bus);

  NetId constant(bool value);

  /// Plain FF bank: q[i] <- d[i] each cycle.
  Bus ff_bank(const std::string& prefix, const Bus& d);

  /// Enabled FF bank (kDffEn, lowered later by clock-gating inference).
  Bus ff_bank_en(const std::string& prefix, const Bus& d, NetId enable);

  NetId gate(CellKind kind, const std::string& name, std::vector<NetId> ins);

  /// Bitwise ops over equal-width buses.
  Bus bitwise(CellKind kind2, const std::string& prefix, const Bus& a,
              const Bus& b);
  Bus invert(const std::string& prefix, const Bus& a);

  /// 2:1 bus mux: sel ? b : a.
  Bus mux(const std::string& prefix, const Bus& a, const Bus& b, NetId sel);

  /// Ripple-carry adder (sum only), realistic carry chain depth.
  Bus adder(const std::string& prefix, const Bus& a, const Bus& b);

  /// Increment by a constant small value (PC + 4 style): half-adder chain.
  Bus incrementer(const std::string& prefix, const Bus& a);

  /// One-hot decoder over `bits` address nets (2^bits outputs, AND trees).
  Bus decoder(const std::string& prefix, const Bus& addr);

  /// XOR-reduce a bus to one net (balanced tree).
  NetId xor_reduce(const std::string& prefix, const Bus& a);

  /// Substitution-style mixing layer: every output bit is a random 2-3
  /// input gate over a shuffled window of the input bus (crypto datapaths).
  Bus mix_layer(const std::string& prefix, const Bus& a, int fanin_window = 6);

  /// Random combinational cloud: `num_gates` gates over `sources`, returns
  /// the last `outputs` produced nets. Logic depth is bounded by
  /// `max_depth` so generated circuits meet their target period.
  Bus random_cloud(const std::string& prefix, const Bus& sources,
                   int num_gates, int outputs, int max_depth = 10);

  /// Rotate-left of a bus (pure wiring).
  static Bus rotate(const Bus& a, int amount);

 private:
  Netlist& nl_;
  NetId clk_;
  Rng& rng_;
};

}  // namespace tp::circuits
