// ISCAS89-class generators.
//
// Each circuit mixes three register populations whose proportions are tuned
// per circuit to reproduce the paper's structural observations (e.g. s1488
// is a re-synthesized controller dominated by FFs with combinational
// feedback and gains nothing from the conversion, while the larger circuits
// are datapath-heavy):
//   - control clusters: small FSMs whose next-state logic feeds back on the
//     cluster (self-loops and short cycles);
//   - datapath chains: shift-like pipelines with light logic per stage;
//   - independent registers: PI-loaded staging registers with no FF-to-FF
//     edges.
#include "src/circuits/benchmark.hpp"
#include "src/circuits/builder.hpp"
#include "src/util/strcat.hpp"

namespace tp::circuits {
namespace {

struct IscasProfile {
  int ffs;
  int pis;
  int pos;
  double control = 0.3;      // fraction of FFs in feedback clusters
  double chain = 0.5;        // fraction in pipeline chains
  int cluster_size = 6;      // FFs per FSM cluster
  int chain_depth = 5;       // stages per datapath chain
  int gates_per_ff = 4;      // sizing of the random logic
  std::uint64_t seed = 0x15CA5;
};

IscasProfile profile_for(const std::string& name) {
  // Register counts follow Table I; PI/PO counts the ISCAS89 suite.
  if (name == "s1196") return {.ffs = 18, .pis = 14, .pos = 14,
                               .control = 0.30, .chain = 0.40};
  if (name == "s1238") return {.ffs = 18, .pis = 14, .pos = 14,
                               .control = 0.32, .chain = 0.40};
  if (name == "s1423") return {.ffs = 81, .pis = 17, .pos = 5,
                               .control = 0.62, .chain = 0.30,
                               .chain_depth = 8};
  if (name == "s1488") return {.ffs = 6, .pis = 8, .pos = 19,
                               .control = 1.0, .chain = 0.0,
                               .cluster_size = 6, .gates_per_ff = 40};
  if (name == "s5378") return {.ffs = 163, .pis = 35, .pos = 49,
                               .control = 0.28, .chain = 0.45};
  if (name == "s9234") return {.ffs = 140, .pis = 36, .pos = 39,
                               .control = 0.35, .chain = 0.40};
  if (name == "s13207") return {.ffs = 457, .pis = 62, .pos = 152,
                                .control = 0.30, .chain = 0.45};
  if (name == "s15850") return {.ffs = 454, .pis = 77, .pos = 150,
                                .control = 0.35, .chain = 0.40};
  if (name == "s35932") return {.ffs = 1728, .pis = 35, .pos = 320,
                                .control = 0.12, .chain = 0.55,
                                .chain_depth = 6};
  if (name == "s38417") return {.ffs = 1489, .pis = 28, .pos = 106,
                                .control = 0.25, .chain = 0.45};
  if (name == "s38584") return {.ffs = 1319, .pis = 38, .pos = 304,
                                .control = 0.55, .chain = 0.30};
  throw Error(cat("unknown ISCAS circuit ", name));
}

}  // namespace

Netlist make_iscas(const std::string& name, std::int64_t period_ps) {
  const IscasProfile p = profile_for(name);
  Netlist nl(name);
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(period_ps, nl.cell(clk).out);
  Rng rng(p.seed ^ std::hash<std::string>{}(name));
  Builder b(nl, nl.cell(clk).out, rng);

  const Bus pis = b.inputs("pi", p.pis);
  Bus taps = pis;  // nets available as logic sources / PO candidates

  int remaining = p.ffs;
  const int control_ffs = static_cast<int>(p.control * p.ffs);
  const int chain_ffs = static_cast<int>(p.chain * p.ffs);

  // Control clusters: next_state = mix(cluster state, a few inputs).
  int cluster_index = 0;
  for (int built = 0; built < control_ffs; ++cluster_index) {
    const int size = std::min(p.cluster_size, control_ffs - built);
    // Bootstrap the cluster with placeholder D inputs, then rewire to its
    // own next-state logic to create the feedback.
    Bus seed_d;
    for (int i = 0; i < size; ++i) {
      seed_d.push_back(taps[rng.below(taps.size())]);
    }
    const std::string prefix = cat("fsm", cluster_index);
    Bus state;
    std::vector<CellId> regs;
    for (int i = 0; i < size; ++i) {
      const NetId q = nl.add_net(cat(prefix, "_q", i));
      regs.push_back(nl.add_cell(CellKind::kDff, cat(prefix, "_q", i),
                                 {seed_d[static_cast<std::size_t>(i)],
                                  b.clk()},
                                 q, Phase::kClk));
      state.push_back(q);
    }
    Bus sources = state;
    for (int i = 0; i < 3; ++i) sources.push_back(taps[rng.below(taps.size())]);
    // FSM next-state logic is shallow in real controllers; depth 8 also
    // keeps the back-to-back p2/p3 windows of converted control clusters
    // feasible at 1 GHz.
    const Bus next = b.random_cloud(cat(prefix, "_ns"), sources,
                                    size * p.gates_per_ff / 2, size,
                                    /*max_depth=*/8);
    for (int i = 0; i < size; ++i) {
      nl.replace_input(regs[static_cast<std::size_t>(i)], 0,
                       next[static_cast<std::size_t>(i)]);
    }
    taps.insert(taps.end(), state.begin(), state.end());
    built += size;
    remaining -= size;
  }

  // Datapath chains: several logic levels per stage (real ISCAS circuits
  // average ~8 gates and 10+ levels per register), so that glitch
  // propagation and retiming are meaningful.
  int chain_index = 0;
  for (int built = 0; built < chain_ffs; ++chain_index) {
    const int depth = std::min(p.chain_depth, chain_ffs - built);
    NetId d = taps[rng.below(taps.size())];
    for (int s = 0; s < depth; ++s) {
      const std::string stage = cat("ch", chain_index, "_", s);
      if (s > 0) {
        Bus stage_in{d};
        for (int t = 0; t < 3; ++t) {
          stage_in.push_back(taps[rng.below(taps.size())]);
        }
        const Bus stage_out = b.random_cloud(
            stage + "_l", stage_in, p.gates_per_ff, 1, /*max_depth=*/8);
        d = stage_out.front();
      }
      const NetId q = nl.add_net(stage);
      nl.add_cell(CellKind::kDff, stage, {d, b.clk()}, q, Phase::kClk);
      d = q;
      taps.push_back(q);
    }
    built += depth;
    remaining -= depth;
  }

  // Independent staging registers loaded straight from PIs.
  for (int i = 0; i < remaining; ++i) {
    const std::string name_i = cat("st", i);
    const NetId q = nl.add_net(name_i);
    nl.add_cell(CellKind::kDff, name_i,
                {pis[rng.below(pis.size())], b.clk()}, q, Phase::kClk);
    taps.push_back(q);
  }

  // Output cones over the accumulated sources.
  const Bus po_nets = b.random_cloud("po_logic", taps,
                                     p.ffs * p.gates_per_ff / 2,
                                     p.pos);
  b.outputs("po", po_nets);
  nl.validate();
  return nl;
}

}  // namespace tp::circuits
