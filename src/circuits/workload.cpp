#include "src/circuits/workload.hpp"

#include <algorithm>

namespace tp::circuits {
namespace {

/// One stimulus phase: `cycles` cycles with the given input toggle
/// probability and enable-style duty (probability that control inputs —
/// the last few PIs, e.g. load_key/start/irq — are held active).
struct Phase {
  std::size_t cycles;
  double toggle;
  double control_duty;
};

Stimulus phased_stimulus(std::size_t num_inputs, std::size_t num_controls,
                         const std::vector<Phase>& phases,
                         std::size_t total_cycles, std::uint64_t seed) {
  Rng rng(seed);
  Stimulus stimulus;
  std::vector<std::uint8_t> current(num_inputs, 0);
  for (auto& v : current) v = rng.chance(0.5) ? 1 : 0;
  std::size_t phase_index = 0;
  std::size_t in_phase = 0;
  while (stimulus.size() < total_cycles) {
    const Phase& phase = phases[phase_index % phases.size()];
    for (std::size_t i = 0; i + num_controls < num_inputs; ++i) {
      if (rng.chance(phase.toggle)) current[i] ^= 1;
    }
    for (std::size_t c = 0; c < num_controls && c < num_inputs; ++c) {
      current[num_inputs - 1 - c] =
          rng.chance(phase.control_duty) ? 1 : 0;
    }
    stimulus.push_back(current);
    if (++in_phase >= phase.cycles) {
      in_phase = 0;
      ++phase_index;
    }
  }
  return stimulus;
}

}  // namespace

std::string_view workload_name(Workload workload) {
  switch (workload) {
    case Workload::kPaperDefault: return "paper-default";
    case Workload::kDhrystone: return "dhrystone";
    case Workload::kCoremark: return "coremark";
  }
  return "?";
}

Stimulus make_stimulus(const Benchmark& benchmark, Workload workload,
                       std::size_t cycles, std::uint64_t seed) {
  const std::size_t inputs = benchmark.netlist.data_inputs().size();
  const std::uint64_t s = seed ^ std::hash<std::string>{}(benchmark.name);

  if (workload == Workload::kDhrystone) {
    // Steady integer loop: high, very regular activity; few stalls.
    return phased_stimulus(inputs, 1,
                           {{64, 0.45, 0.05}, {8, 0.30, 0.10}}, cycles, s);
  }
  if (workload == Workload::kCoremark) {
    // Mixed kernels: list processing (moderate), matrix (high), state
    // machine (low), separated by setup phases.
    return phased_stimulus(inputs, 1,
                           {{48, 0.30, 0.08},
                            {48, 0.55, 0.04},
                            {32, 0.12, 0.20},
                            {16, 0.40, 0.10}},
                           cycles, s);
  }

  // Paper defaults by suite.
  if (benchmark.suite == "ISCAS") {
    // Auto-generated pseudo-random input streams. The per-input toggle
    // rate is kept at a realistic 20% of cycles; a full 50% stream would
    // make combinational switching drown the clock network, which carries
    // the bulk of the power in the paper's Table II.
    Rng rng(s);
    return random_stimulus(inputs, cycles, rng, 0.2);
  }
  if (benchmark.suite == "CEP") {
    // Self-check programs: key-load bursts followed by encryption bursts
    // and verification idles (the 2 control inputs are load_key/start).
    return phased_stimulus(inputs, 2,
                           {{8, 0.50, 0.9},    // load vectors
                            {40, 0.45, 0.15},  // crunch
                            {16, 0.05, 0.02}}, // check/idle
                           cycles, s);
  }
  // CPU testbench programs ("pi", "rv32ui-v-simple", "hello world"):
  // bursty instruction streams with idle waits.
  return phased_stimulus(inputs, 1,
                         {{40, 0.35, 0.06}, {24, 0.10, 0.12},
                          {32, 0.30, 0.05}},
                         cycles, s);
}

}  // namespace tp::circuits
