// Benchmark registry: synthetic equivalents of the paper's evaluation
// circuits (Sec. V).
//
// The original RTL (ISCAS89, MIT-LL CEP, Plasma/Rocket/Cortex-M0) is not
// redistributable or requires commercial synthesis, so each benchmark is a
// deterministic structural generator tuned to the paper's reported register
// count and to the structural profile that drives the conversion results:
// the fraction of FFs with combinational feedback (control), in pipeline
// chains (datapath), and in independent/enable-gated banks (storage).
// Clock frequencies follow the paper: ISCAS at 1 GHz, CEP and Plasma at
// 500 MHz, RISC-V and ARM-M0 at 333.3 MHz.
#pragma once

#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace tp::circuits {

struct Benchmark {
  std::string name;
  std::string suite;  // "ISCAS", "CEP", "CPU"
  Netlist netlist;    // FF-based design, kDffEn for enables (pre-synthesis)
  std::int64_t period_ps = 0;
  std::string paper_workload;  // stimulus the paper used for this circuit
};

/// All 18 benchmark names in Table I/II order.
const std::vector<std::string>& benchmark_names();

/// Builds a benchmark by name; throws tp::Error for unknown names.
Benchmark make_benchmark(const std::string& name);

// Per-suite generators (exposed for tests).
Netlist make_iscas(const std::string& name, std::int64_t period_ps);
Netlist make_cep(const std::string& name, std::int64_t period_ps);
Netlist make_cpu(const std::string& name, std::int64_t period_ps);

/// Macro-scale pipeline grid for the runtime benchmarks (bench/macro_flow):
/// `lanes` parallel register pipelines of `width` bits, deep enough to hold
/// ~`flip_flops` registers, mixing bounded-depth logic stages, a sparse
/// direct-shift lane (hold pressure for repair_hold), cross-lane XOR
/// coupling, and a
/// per-lane feedback register. With `three_phase` the banks are kLatchH
/// latches cycling p1/p2/p3 with stage depth (a ready-made 3-phase design,
/// no conversion needed); otherwise plain kDff on a single-phase clock.
/// Deterministic for a given spec.
struct MacroSpec {
  int flip_flops = 1000;
  int lanes = 8;
  int width = 16;
  int gates_per_stage = 24;
  bool three_phase = false;
  std::int64_t period_ps = 2000;
  std::uint64_t seed = 0xAC0;
};

Netlist make_macro(const MacroSpec& spec);

}  // namespace tp::circuits
