#include "src/circuits/builder.hpp"

#include <algorithm>

#include "src/util/strcat.hpp"

namespace tp::circuits {

Bus Builder::inputs(const std::string& prefix, int width) {
  Bus bus;
  for (int i = 0; i < width; ++i) {
    bus.push_back(nl_.cell(nl_.add_input(cat(prefix, i))).out);
  }
  return bus;
}

void Builder::outputs(const std::string& prefix, const Bus& bus) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    nl_.add_output(cat(prefix, i), bus[i]);
  }
}

NetId Builder::constant(bool value) {
  const NetId net = nl_.add_net(value ? "const1" : "const0");
  nl_.add_cell(value ? CellKind::kConst1 : CellKind::kConst0,
               nl_.net(net).name + "_" + std::to_string(net.value()), {},
               net);
  return net;
}

Bus Builder::ff_bank(const std::string& prefix, const Bus& d) {
  Bus q;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const NetId out = nl_.add_net(cat(prefix, i));
    nl_.add_cell(CellKind::kDff, cat(prefix, i), {d[i], clk_}, out,
                 Phase::kClk);
    q.push_back(out);
  }
  return q;
}

Bus Builder::ff_bank_en(const std::string& prefix, const Bus& d,
                        NetId enable) {
  Bus q;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const NetId out = nl_.add_net(cat(prefix, i));
    nl_.add_cell(CellKind::kDffEn, cat(prefix, i), {d[i], enable, clk_},
                 out, Phase::kClk);
    q.push_back(out);
  }
  return q;
}

NetId Builder::gate(CellKind kind, const std::string& name,
                    std::vector<NetId> ins) {
  return nl_.cell(nl_.add_gate(kind, name, std::move(ins))).out;
}

Bus Builder::bitwise(CellKind kind2, const std::string& prefix, const Bus& a,
                     const Bus& b) {
  require(a.size() == b.size(), "bitwise: width mismatch");
  Bus out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(gate(kind2, cat(prefix, i), {a[i], b[i]}));
  }
  return out;
}

Bus Builder::invert(const std::string& prefix, const Bus& a) {
  Bus out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(gate(CellKind::kInv, cat(prefix, i), {a[i]}));
  }
  return out;
}

Bus Builder::mux(const std::string& prefix, const Bus& a, const Bus& b,
                 NetId sel) {
  require(a.size() == b.size(), "mux: width mismatch");
  Bus out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(gate(CellKind::kMux2, cat(prefix, i), {a[i], b[i], sel}));
  }
  return out;
}

Bus Builder::adder(const std::string& prefix, const Bus& a, const Bus& b) {
  // Carry-select adder: each 8-bit block ripples twice in parallel (carry-in
  // 0 and 1); block results and carries are selected by a short mux chain.
  // This is the depth/area trade-off a synthesis tool would pick for the
  // CPU benchmarks\' cycle budgets.
  require(a.size() == b.size(), "adder: width mismatch");
  constexpr std::size_t kBlock = 8;
  Bus sum;
  NetId carry_in = constant(false);
  const NetId one = constant(true);
  for (std::size_t base = 0; base < a.size(); base += kBlock) {
    const std::size_t end = std::min(a.size(), base + kBlock);
    Bus sum0, sum1;
    NetId c0 = constant(false);
    NetId c1 = one;
    for (std::size_t i = base; i < end; ++i) {
      const NetId p = gate(CellKind::kXor2, cat(prefix, "_p", i),
                           {a[i], b[i]});
      sum0.push_back(gate(CellKind::kXor2, cat(prefix, "_s0_", i), {p, c0}));
      sum1.push_back(gate(CellKind::kXor2, cat(prefix, "_s1_", i), {p, c1}));
      c0 = gate(CellKind::kMaj3, cat(prefix, "_c0_", i), {a[i], b[i], c0});
      c1 = gate(CellKind::kMaj3, cat(prefix, "_c1_", i), {a[i], b[i], c1});
    }
    for (std::size_t i = 0; i < sum0.size(); ++i) {
      sum.push_back(gate(CellKind::kMux2, cat(prefix, base + i),
                         {sum0[i], sum1[i], carry_in}));
    }
    carry_in = gate(CellKind::kMux2, cat(prefix, "_cs", base),
                    {c0, c1, carry_in});
  }
  return sum;
}

Bus Builder::incrementer(const std::string& prefix, const Bus& a) {
  // Prefix-AND (Kogge-Stone style) incrementer: the carry into bit i is the
  // AND of all lower bits, computed by a doubling network in log depth;
  // sum_i = a_i XOR carry_i. This is the structure a real PC increment uses
  // to stay off the critical path.
  const std::size_t n = a.size();
  Bus all = a;  // all[i] becomes AND(a_0 .. a_i)
  int stage = 0;
  for (std::size_t stride = 1; stride < n; stride *= 2, ++stage) {
    Bus next = all;
    for (std::size_t i = stride; i < n; ++i) {
      next[i] = gate(CellKind::kAnd2, cat(prefix, "_ks", stage, "_", i),
                     {all[i], all[i - stride]});
    }
    all = std::move(next);
  }
  Bus sum;
  sum.push_back(gate(CellKind::kInv, cat(prefix, 0), {a[0]}));
  for (std::size_t i = 1; i < n; ++i) {
    sum.push_back(gate(CellKind::kXor2, cat(prefix, i), {a[i], all[i - 1]}));
  }
  return sum;
}

Bus Builder::decoder(const std::string& prefix, const Bus& addr) {
  Bus lines{constant(true)};
  for (std::size_t bit = 0; bit < addr.size(); ++bit) {
    const NetId nbit =
        gate(CellKind::kInv, cat(prefix, "_n", bit), {addr[bit]});
    Bus next;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      next.push_back(gate(CellKind::kAnd2,
                          cat(prefix, "_", bit, "_", 2 * i),
                          {lines[i], nbit}));
      next.push_back(gate(CellKind::kAnd2,
                          cat(prefix, "_", bit, "_", 2 * i + 1),
                          {lines[i], addr[bit]}));
    }
    lines = std::move(next);
  }
  return lines;
}

NetId Builder::xor_reduce(const std::string& prefix, const Bus& a) {
  require(!a.empty(), "xor_reduce: empty bus");
  Bus level = a;
  int stage = 0;
  while (level.size() > 1) {
    Bus next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(gate(CellKind::kXor2, cat(prefix, "_", stage, "_", i),
                          {level[i], level[i + 1]}));
    }
    if (level.size() % 2) next.push_back(level.back());
    level = std::move(next);
    ++stage;
  }
  return level.front();
}

Bus Builder::mix_layer(const std::string& prefix, const Bus& a,
                       int fanin_window) {
  const CellKind kinds[] = {CellKind::kXor2,  CellKind::kXnor2,
                            CellKind::kAoi21, CellKind::kOai21,
                            CellKind::kNand2, CellKind::kMaj3};
  Bus out;
  const auto n = static_cast<int>(a.size());
  for (int i = 0; i < n; ++i) {
    const CellKind kind = kinds[rng_.below(std::size(kinds))];
    std::vector<NetId> ins;
    for (int p = 0; p < num_inputs(kind); ++p) {
      const int offset = static_cast<int>(rng_.below(
          static_cast<std::uint64_t>(fanin_window)));
      ins.push_back(a[static_cast<std::size_t>((i + offset) % n)]);
    }
    out.push_back(gate(kind, cat(prefix, i), std::move(ins)));
  }
  return out;
}

Bus Builder::random_cloud(const std::string& prefix, const Bus& sources,
                          int num_gates, int outputs, int max_depth) {
  require(!sources.empty(), "random_cloud: no sources");
  const CellKind kinds[] = {CellKind::kAnd2, CellKind::kOr2,
                            CellKind::kNand2, CellKind::kNor2,
                            CellKind::kXor2, CellKind::kMux2,
                            CellKind::kInv, CellKind::kAoi21};
  Bus all = sources;
  std::vector<int> depth(sources.size(), 0);
  for (int g = 0; g < num_gates; ++g) {
    const CellKind kind = kinds[rng_.below(std::size(kinds))];
    std::vector<NetId> ins;
    int d = 0;
    for (int p = 0; p < num_inputs(kind); ++p) {
      // Bias toward recent nets for depth, but respect the depth bound by
      // re-picking shallow nets when necessary.
      const std::size_t span = std::min<std::size_t>(all.size(), 48);
      std::size_t pick =
          rng_.chance(0.7) ? all.size() - 1 - rng_.below(span)
                           : rng_.below(all.size());
      if (depth[pick] >= max_depth) pick = rng_.below(sources.size());
      ins.push_back(all[pick]);
      d = std::max(d, depth[pick]);
    }
    all.push_back(gate(kind, cat(prefix, g), std::move(ins)));
    depth.push_back(d + 1);
  }
  const int take = std::min<int>(outputs, static_cast<int>(all.size()));
  return Bus(all.end() - take, all.end());
}

Bus Builder::rotate(const Bus& a, int amount) {
  Bus out(a.size());
  const auto n = static_cast<int>(a.size());
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>((i + amount) % n)];
  }
  return out;
}

}  // namespace tp::circuits
