// Macro-scale pipeline generator for the incremental-STA / parallel-flow
// benchmarks (bench/macro_flow).
//
// Unlike the Table I/II benchmarks, which are tuned to the paper's reported
// register counts, make_macro steps freely from a few hundred registers to
// 10^6 so the asymptotic cost of full-vs-incremental timing can be
// measured. The structure is a lanes x depth pipeline grid chosen to
// exercise every hot path the incremental timer must get right:
//   - logic stages: bounded-depth random clouds (setup pressure, realistic
//     fanout for the SoA propagation loops);
//   - direct shift segments (every fourth stage, lane 0 only): q -> d with
//     no logic, so repair_hold has real buffering work on a few percent of
//     endpoints whose fanout cones are tiny compared to the design — the
//     incremental win case;
//   - cross-lane coupling (every third stage): XOR taps from the neighbor
//     lane, so edits in one lane have cones that spill into others;
//   - per-lane feedback registers, so the design is cyclic like the CPU
//     benchmarks and launch classes reconverge.
// The FF variant registers on a single-phase clock; the three-phase variant
// places kLatchH banks directly on p1/p2/p3 (cycling with stage depth), so
// the STA benchmarks can hit transparency windows and borrowing chains
// without running a conversion first. Both variants are deterministic for a
// given spec.
#include "src/circuits/benchmark.hpp"
#include "src/circuits/builder.hpp"
#include "src/util/strcat.hpp"

namespace tp::circuits {

Netlist make_macro(const MacroSpec& spec) {
  const int lanes = std::max(1, spec.lanes);
  const int width = std::max(1, spec.width);
  const int regs_per_stage = lanes * width;
  const int depth = std::max(
      2, (spec.flip_flops + regs_per_stage - 1) / regs_per_stage);

  Netlist nl(cat("macro", spec.flip_flops, spec.three_phase ? "_3p" : "_ff"));
  NetId clk_roots[3];
  Phase clk_phases[3];
  if (spec.three_phase) {
    const CellId p1 = nl.add_input("p1");
    const CellId p2 = nl.add_input("p2");
    const CellId p3 = nl.add_input("p3");
    nl.set_clock_root(p1, Phase::kP1);
    nl.set_clock_root(p2, Phase::kP2);
    nl.set_clock_root(p3, Phase::kP3);
    nl.clocks() = three_phase_spec(spec.period_ps, nl.cell(p1).out,
                                   nl.cell(p2).out, nl.cell(p3).out);
    clk_roots[0] = nl.cell(p1).out;
    clk_roots[1] = nl.cell(p2).out;
    clk_roots[2] = nl.cell(p3).out;
    clk_phases[0] = Phase::kP1;
    clk_phases[1] = Phase::kP2;
    clk_phases[2] = Phase::kP3;
  } else {
    const CellId clk = nl.add_input("clk");
    nl.set_clock_root(clk, Phase::kClk);
    nl.clocks() = single_phase_spec(spec.period_ps, nl.cell(clk).out);
    clk_roots[0] = clk_roots[1] = clk_roots[2] = nl.cell(clk).out;
    clk_phases[0] = clk_phases[1] = clk_phases[2] = Phase::kClk;
  }
  Rng rng(spec.seed ^ (static_cast<std::uint64_t>(spec.flip_flops) << 20) ^
          (spec.three_phase ? 0x3Fu : 0x0u));
  Builder b(nl, clk_roots[0], rng);

  // One register bank; the three-phase variant cycles p1/p2/p3 with stage
  // depth so consecutive stages borrow across adjacent windows.
  auto reg_bank = [&](const std::string& prefix, const Bus& d,
                      int stage) -> Bus {
    if (!spec.three_phase) return b.ff_bank(prefix, d);
    const int k = stage % 3;
    Bus q;
    q.reserve(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
      const NetId out = nl.add_net(cat(prefix, i));
      nl.add_cell(CellKind::kLatchH, cat(prefix, i), {d[i], clk_roots[k]},
                  out, clk_phases[k]);
      q.push_back(out);
    }
    return q;
  };

  std::vector<Bus> state(static_cast<std::size_t>(lanes));
  for (int lane = 0; lane < lanes; ++lane) {
    state[static_cast<std::size_t>(lane)] =
        b.inputs(cat("l", lane, "_in"), width);
  }

  for (int s = 0; s < depth; ++s) {
    std::vector<Bus> next(static_cast<std::size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
      const Bus& cur = state[static_cast<std::size_t>(lane)];
      Bus d;
      if (s % 4 == 3 && lane == 0) {
        // Direct shift segment on one lane only: hold pressure stays
        // sparse (a few percent of endpoints, like post-CTS reality), so
        // repair touches small cones instead of half the netlist.
        d = cur;
      } else if (s % 3 == 1 && lanes > 1) {
        const Bus& neighbor =
            state[static_cast<std::size_t>((lane + 1) % lanes)];
        d = b.bitwise(CellKind::kXor2, cat("l", lane, "_x", s), cur,
                      Builder::rotate(neighbor, 1));
      } else {
        d = b.random_cloud(cat("l", lane, "_c", s), cur,
                           spec.gates_per_stage, width, /*max_depth=*/6);
      }
      next[static_cast<std::size_t>(lane)] =
          reg_bank(cat("l", lane, "_r", s, "_"), d, s);
    }
    state = std::move(next);
  }

  // Per-lane feedback register: fb <- xor_reduce(last bank) ^ fb. Bootstrap
  // the self-edge through replace_input, like the ISCAS control clusters.
  for (int lane = 0; lane < lanes; ++lane) {
    const Bus& last = state[static_cast<std::size_t>(lane)];
    const NetId reduced = b.xor_reduce(cat("l", lane, "_red"), last);
    const CellId mix =
        nl.add_gate(CellKind::kXor2, cat("l", lane, "_fbmix"),
                    {reduced, reduced});
    const Bus fb =
        reg_bank(cat("l", lane, "_fb"), {nl.cell(mix).out}, depth);
    nl.replace_input(mix, 1, fb[0]);
    nl.add_output(cat("l", lane, "_fbo"), fb[0]);
    b.outputs(cat("l", lane, "_out"), last);
  }
  return nl;
}

}  // namespace tp::circuits
