// Workload stimulus generators.
//
// The paper drives each circuit with a specific program (Sec. V, footnote):
// pseudo-random streams for ISCAS, the CEP self-check programs, "pi" for
// Plasma, "rv32ui-v-simple" for RISC-V, "hello world" for ARM-M0, and —
// for Fig. 4 — Dhrystone and Coremark on the two cores. Without the
// original binaries, each workload becomes an activity profile: a phased
// toggle-probability schedule over the primary inputs (instruction-bus
// bursts, load/idle windows, enable duty cycles) that reproduces the
// workload's switching character rather than its semantics.
#pragma once

#include "src/circuits/benchmark.hpp"
#include "src/sim/stimulus.hpp"

namespace tp::circuits {

enum class Workload {
  kPaperDefault,  // the per-circuit program named in the paper
  kDhrystone,     // steady integer loop: high, regular activity
  kCoremark,      // mixed kernels: alternating high/low phases
};

std::string_view workload_name(Workload workload);

/// Builds a stimulus of `cycles` cycles for the benchmark's data inputs.
Stimulus make_stimulus(const Benchmark& benchmark, Workload workload,
                       std::size_t cycles, std::uint64_t seed = 1);

}  // namespace tp::circuits
