// CEP-class generators (MIT-LL Common Evaluation Platform submodules).
//
// Crypto datapaths: wide XOR-heavy round pipelines plus enable-gated key /
// state storage. Pipeline layers alternate freely under the phase ILP
// (roughly half become single latches) while the enable-gated storage banks
// have no FF-to-FF edges among themselves and convert almost entirely to
// single latches — reproducing the suite's above-average register savings
// in Table I. SHA256 adds the compression-loop feedback that caps its
// savings relative to AES/MD5.
#include "src/circuits/benchmark.hpp"
#include "src/circuits/builder.hpp"
#include "src/util/strcat.hpp"

namespace tp::circuits {
namespace {

struct CepProfile {
  int rounds;        // pipeline depth
  int width;         // pipeline width (bits)
  int key_bank;      // enable-gated storage FFs (no FF->FF edges)
  int feedback;      // FFs in a compression-style feedback loop
  int pis;
  int pos;
};

CepProfile profile_for(const std::string& name) {
  // Tuned so that total FFs match Table I:
  //   total = rounds * width + key_bank + feedback
  if (name == "AES") return {.rounds = 10, .width = 640, .key_bank = 3283,
                             .feedback = 32, .pis = 128, .pos = 128};
  if (name == "DES3") return {.rounds = 6, .width = 36, .key_bank = 196,
                              .feedback = 24, .pis = 64, .pos = 64};
  if (name == "SHA256") return {.rounds = 4, .width = 160, .key_bank = 678,
                                .feedback = 256, .pis = 64, .pos = 64};
  if (name == "MD5") return {.rounds = 5, .width = 128, .key_bank = 132,
                             .feedback = 32, .pis = 64, .pos = 32};
  throw Error(cat("unknown CEP circuit ", name));
}

}  // namespace

Netlist make_cep(const std::string& name, std::int64_t period_ps) {
  const CepProfile p = profile_for(name);
  Netlist nl(name);
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(period_ps, nl.cell(clk).out);
  Rng rng(0xCE9 ^ std::hash<std::string>{}(name));
  Builder b(nl, nl.cell(clk).out, rng);

  const Bus data_in = b.inputs("din", p.pis);
  const NetId load_key = nl.cell(nl.add_input("load_key")).out;
  const NetId start = nl.cell(nl.add_input("start")).out;

  // Enable-gated key/state storage, loaded from the inputs in slices.
  Bus key;
  for (int i = 0; i < p.key_bank; ++i) {
    const NetId d = data_in[static_cast<std::size_t>(i) % data_in.size()];
    const NetId q = nl.add_net(cat("key", i));
    nl.add_cell(CellKind::kDffEn, cat("key", i), {d, load_key, b.clk()}, q,
                Phase::kClk);
    key.push_back(q);
  }

  // Round pipeline: widen/narrow the input to `width`, then per round a
  // substitution-permutation mixing layer XOR-ed with a key slice.
  Bus state;
  for (int i = 0; i < p.width; ++i) {
    state.push_back(data_in[static_cast<std::size_t>(i) % data_in.size()]);
  }
  for (int r = 0; r < p.rounds; ++r) {
    Bus mixed = b.mix_layer(cat("r", r, "_sub"), state, 7);
    mixed = b.mix_layer(cat("r", r, "_perm"), Builder::rotate(mixed, 1 + r),
                        5);
    mixed = b.mix_layer(cat("r", r, "_sub2"), mixed, 7);
    // Key addition: XOR with a rotating slice of the key bank.
    Bus round_key(mixed.size());
    for (std::size_t i = 0; i < mixed.size(); ++i) {
      round_key[i] = key[(static_cast<std::size_t>(r) * mixed.size() + i) %
                         key.size()];
    }
    mixed = b.bitwise(CellKind::kXor2, cat("r", r, "_ka"), mixed, round_key);
    state = b.ff_bank(cat("r", r, "_reg"), mixed);
  }

  // Compression-style feedback (SHA-like chaining variables): the loop
  // registers update from a mix of themselves and the pipeline output.
  if (p.feedback > 0) {
    Bus fb_seed;
    for (int i = 0; i < p.feedback; ++i) {
      fb_seed.push_back(state[static_cast<std::size_t>(i) % state.size()]);
    }
    std::vector<CellId> regs;
    Bus fb_q;
    for (int i = 0; i < p.feedback; ++i) {
      const NetId q = nl.add_net(cat("h", i));
      regs.push_back(nl.add_cell(CellKind::kDffEn, cat("h", i),
                                 {fb_seed[static_cast<std::size_t>(i)],
                                  start, b.clk()},
                                 q, Phase::kClk));
      fb_q.push_back(q);
    }
    Bus loop_in = fb_q;
    for (int i = 0; i < p.feedback; ++i) {
      loop_in.push_back(state[static_cast<std::size_t>(i) % state.size()]);
    }
    const Bus next = b.mix_layer("h_mix", loop_in, 5);
    for (int i = 0; i < p.feedback; ++i) {
      nl.replace_input(regs[static_cast<std::size_t>(i)], 0,
                       next[static_cast<std::size_t>(i)]);
    }
    // Chain the feedback block into the observable outputs.
    for (int i = 0; i < std::min<int>(p.feedback, p.pos); ++i) {
      state[static_cast<std::size_t>(i)] = b.gate(
          CellKind::kXor2, cat("out_mix", i),
          {state[static_cast<std::size_t>(i)],
           fb_q[static_cast<std::size_t>(i)]});
    }
  }

  for (int i = 0; i < p.pos; ++i) {
    nl.add_output(cat("dout", i),
                  state[static_cast<std::size_t>(i) % state.size()]);
  }
  nl.validate();
  return nl;
}

}  // namespace tp::circuits
