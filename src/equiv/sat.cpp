#include "src/equiv/sat.hpp"

#include <algorithm>

namespace tp::equiv {

int SatSolver::new_var() {
  const int v = num_vars();
  assigns_.push_back(-1);
  level_.push_back(0);
  reason_.push_back(-1);
  activity_.push_back(0.0);
  polarity_.push_back(0);
  seen_.push_back(0);
  model_.push_back(0);
  heap_index_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool SatSolver::add_clause(std::vector<int> lits) {
  if (!ok_) return false;
  // Level-0 simplification: dedup, drop satisfied clauses and false literals.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<int> cl;
  cl.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const int lit = lits[i];
    if (i + 1 < lits.size() && lits[i + 1] == negate(lit)) return true;
    const int val = value_of(lit);
    if (val == 1 && level_[lit >> 1] == 0) return true;   // already satisfied
    if (val == 0 && level_[lit >> 1] == 0) continue;      // false forever
    cl.push_back(lit);
  }
  if (cl.empty()) {
    ok_ = false;
    return false;
  }
  if (cl.size() == 1) {
    if (value_of(cl[0]) == 0) {
      ok_ = false;
      return false;
    }
    if (value_of(cl[0]) == -1) enqueue(cl[0], -1);
    return ok_;
  }
  const int ci = static_cast<int>(clauses_.size());
  watches_[cl[0]].push_back({ci});
  watches_[cl[1]].push_back({ci});
  clauses_.push_back(std::move(cl));
  return true;
}

void SatSolver::enqueue(int lit, int reason) {
  const int v = lit >> 1;
  assigns_[v] = static_cast<signed char>(1 - (lit & 1));
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(lit);
}

int SatSolver::propagate() {
  while (qhead_ < static_cast<int>(trail_.size())) {
    const int p = trail_[qhead_++];  // p just became true; p^1 became false
    ++num_propagations;
    const int false_lit = negate(p);
    std::vector<Watcher>& ws = watches_[false_lit];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const int ci = ws[i].clause;
      std::vector<int>& cl = clauses_[ci];
      if (cl[0] == false_lit) std::swap(cl[0], cl[1]);
      if (value_of(cl[0]) == 1) {  // clause already satisfied
        ws[keep++] = ws[i];
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < cl.size(); ++k) {
        if (value_of(cl[k]) != 0) {
          std::swap(cl[1], cl[k]);
          watches_[cl[1]].push_back({ci});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      ws[keep++] = ws[i];
      if (value_of(cl[0]) == 0) {  // conflict
        for (++i; i < ws.size(); ++i) ws[keep++] = ws[i];
        ws.resize(keep);
        qhead_ = static_cast<int>(trail_.size());
        return ci;
      }
      enqueue(cl[0], ci);
    }
    ws.resize(keep);
  }
  return -1;
}

void SatSolver::analyze(int confl, std::vector<int>& learnt, int& bt_level) {
  learnt.assign(1, 0);  // slot 0: the asserting literal, filled at the end
  int counter = 0;
  int p = -1;
  int idx = static_cast<int>(trail_.size()) - 1;
  do {
    const std::vector<int>& cl = clauses_[confl];
    for (const int q : cl) {
      if (q == p) continue;
      const int v = q >> 1;
      if (seen_[v] == 0 && level_[v] > 0) {
        seen_[v] = 1;
        bump(v);
        if (level_[v] >= decision_level()) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    while (seen_[trail_[idx] >> 1] == 0) --idx;
    p = trail_[idx--];
    seen_[p >> 1] = 0;
    --counter;
    confl = reason_[p >> 1];
  } while (counter > 0);
  learnt[0] = negate(p);

  bt_level = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    seen_[learnt[i] >> 1] = 0;
    if (level_[learnt[i] >> 1] > bt_level) {
      bt_level = level_[learnt[i] >> 1];
      std::swap(learnt[1], learnt[i]);
    }
  }
}

void SatSolver::backtrack(int target) {
  if (decision_level() <= target) return;
  const int bound = trail_lim_[target];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const int v = trail_[i] >> 1;
    polarity_[v] = assigns_[v];
    assigns_[v] = -1;
    reason_[v] = -1;
    if (heap_index_[v] < 0) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target);
  qhead_ = bound;
}

SatResult SatSolver::solve(std::span<const int> assumptions) {
  ++num_solve_calls;
  if (!ok_) return SatResult::kUnsat;
  backtrack(0);
  std::int64_t conflicts = 0;
  std::int64_t restart_limit = 100;
  std::vector<int> learnt;
  for (;;) {
    const int confl = propagate();
    if (confl >= 0) {
      ++num_conflicts;
      ++conflicts;
      if (decision_level() == 0) {
        ok_ = false;
        return SatResult::kUnsat;
      }
      int bt_level = 0;
      analyze(confl, learnt, bt_level);
      // Never backjump into the middle of the assumption prefix in a way
      // that unassigns an assumption implied at a lower level: bt_level is
      // always < current level, and assumptions are re-decided on the way
      // back down, so plain backjumping stays sound.
      backtrack(bt_level);
      if (learnt.size() == 1) {
        if (value_of(learnt[0]) == 0) {
          ok_ = false;
          return SatResult::kUnsat;
        }
        if (value_of(learnt[0]) == -1) enqueue(learnt[0], -1);
      } else {
        const int ci = static_cast<int>(clauses_.size());
        watches_[learnt[0]].push_back({ci});
        watches_[learnt[1]].push_back({ci});
        clauses_.push_back(learnt);
        enqueue(learnt[0], ci);
      }
      decay();
      if (conflict_limit_ > 0 && conflicts >= conflict_limit_) {
        backtrack(0);
        return SatResult::kUnknown;
      }
      if (conflicts >= restart_limit) {
        restart_limit += restart_limit / 2;
        backtrack(0);
      }
      continue;
    }
    if (decision_level() < static_cast<int>(assumptions.size())) {
      const int p = assumptions[decision_level()];
      const int val = value_of(p);
      if (val == 0) {  // assumption contradicted by the formula
        backtrack(0);
        return SatResult::kUnsat;
      }
      new_decision_level();  // empty level when the assumption is implied
      if (val == -1) enqueue(p, -1);
      continue;
    }
    const int v = pick_branch_var();
    if (v < 0) {  // complete assignment: satisfiable
      for (int i = 0; i < num_vars(); ++i) {
        model_[i] = assigns_[i] < 0 ? 0 : assigns_[i];
      }
      backtrack(0);
      return SatResult::kSat;
    }
    new_decision_level();
    enqueue(polarity_[v] == 1 ? pos_lit(v) : neg_lit(v), -1);
  }
}

int SatSolver::pick_branch_var() {
  while (!heap_.empty()) {
    const int v = heap_pop();
    if (assigns_[v] < 0) return v;
  }
  return -1;
}

void SatSolver::bump(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_index_[var] >= 0) heap_percolate_up(heap_index_[var]);
}

void SatSolver::heap_insert(int var) {
  heap_index_[var] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  heap_percolate_up(heap_index_[var]);
}

void SatSolver::heap_percolate_up(int pos) {
  const int v = heap_[pos];
  while (pos > 0) {
    const int parent = (pos - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[pos] = heap_[parent];
    heap_index_[heap_[pos]] = pos;
    pos = parent;
  }
  heap_[pos] = v;
  heap_index_[v] = pos;
}

void SatSolver::heap_percolate_down(int pos) {
  const int v = heap_[pos];
  const int size = static_cast<int>(heap_.size());
  for (;;) {
    int child = pos * 2 + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[pos] = heap_[child];
    heap_index_[heap_[pos]] = pos;
    pos = child;
  }
  heap_[pos] = v;
  heap_index_[v] = pos;
}

int SatSolver::heap_pop() {
  const int top = heap_[0];
  heap_index_[top] = -1;
  const int last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_index_[last] = 0;
    heap_percolate_down(0);
  }
  return top;
}

}  // namespace tp::equiv
