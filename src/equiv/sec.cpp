#include "src/equiv/sec.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "src/equiv/sat.hpp"
#include "src/sim/simulator.hpp"
#include "src/util/log.hpp"
#include "src/util/rng.hpp"

namespace tp::equiv {
namespace {

constexpr Lit kUnsetLit = 0xFFFFFFFFu;

/// map[node] translates a node; lifts to literals by carrying the edge's
/// complement bit across.
Lit apply_map(const std::vector<Lit>& map, Lit l) {
  return lit_xor(map[lit_node(l)], lit_neg(l));
}

Lit const_lit(bool v) { return v ? kLitTrue : kLitFalse; }

/// Distinct phase-edge times inside one cycle, ascending, always including 0
/// (mirrors the simulator's event schedule).
std::vector<std::int64_t> edge_times(const ClockSpec& clocks) {
  std::vector<std::int64_t> times{0};
  for (const PhaseWaveform& w : clocks.phases) {
    times.push_back(w.rise_ps % clocks.period_ps);
    times.push_back(w.fall_ps % clocks.period_ps);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

bool phase_level(const PhaseWaveform& w, std::int64_t period, std::int64_t t) {
  const std::int64_t rise = w.rise_ps % period;
  const std::int64_t fall = w.fall_ps % period;
  if (rise <= fall) return rise <= t && t < fall;
  return t >= rise || t < fall;  // wrapping waveform
}

int snapshot_event_index(const Netlist& netlist) {
  // Mirrors flow::simulate(): multi-phase plans (3-phase, two-phase)
  // capture outputs after the second event of the cycle.
  return netlist.clocks().phases.size() >= 2 ? 1 : 0;
}

// ---------------------------------------------------------------------------
// One-cycle symbolic execution.
//
// Replays the simulator's schedule with AIG literals instead of bits: a park
// pseudo-event reconstructs the settled end-of-previous-cycle network from
// the abstract state variables, then each phase-edge event runs (1) clock
// sampling + atomic edge-register update from pre-event values, (2) a full
// recursive settle of every live net with level-transparent latches and ICG
// enable latches folded in as multiplexer functions.
// ---------------------------------------------------------------------------

class CycleBuilder {
 public:
  CycleBuilder(Aig& aig, const Netlist& netlist, std::span<const Lit> pi_prev,
               std::span<const Lit> pi_now)
      : aig_(aig), nl_(netlist), pi_prev_(pi_prev), pi_now_(pi_now) {
    require(nl_.clocks().period_ps > 0, "equiv: netlist has no clock spec");
    times_ = edge_times(nl_.clocks());
  }

  Machine build() {
    discover_state();
    index_nets();
    run_park();
    const int snapshot = std::min(snapshot_event_index(nl_),
                                  static_cast<int>(times_.size()) - 1);
    for (std::size_t e = 0; e < times_.size(); ++e) {
      run_event(times_[e]);
      if (static_cast<int>(e) == snapshot) capture_outputs();
    }
    // End-of-cycle settle == park settle of the next cycle (event times are
    // exactly the change points, so nothing moves between the last event and
    // t = Tc-1).
    for (std::size_t i = 0; i < m_.regs.size(); ++i) {
      m_.next_state.push_back(prev_[nl_.cell(m_.regs[i]).out.value()]);
    }
    for (std::size_t j = 0; j < m_.icgs.size(); ++j) {
      m_.next_state.push_back(icg_prev_[j]);
    }
    return std::move(m_);
  }

 private:
  void discover_state() {
    reg_index_.assign(nl_.num_cells(), kInvalidIndex);
    icg_index_.assign(nl_.num_cells(), kInvalidIndex);
    for (const CellId id : nl_.live_cells()) {
      const Cell& cell = nl_.cell(id);
      if (is_register(cell.kind)) {
        reg_index_[id.value()] = static_cast<std::uint32_t>(m_.regs.size());
        m_.regs.push_back(id);
      } else if (cell.kind == CellKind::kIcg ||
                 cell.kind == CellKind::kIcgM1 ||
                 cell.kind == CellKind::kClkDiv2) {
        // Clock dividers share the ICG state slots: one bit of toggle state
        // per cell, read back from Simulator::icg_state at reset.
        icg_index_[id.value()] = static_cast<std::uint32_t>(m_.icgs.size());
        m_.icgs.push_back(id);
      }
    }
    for (std::size_t i = 0; i < m_.regs.size() + m_.icgs.size(); ++i) {
      m_.state_in.push_back(aig_.add_input());
    }
    reg_val_.assign(m_.regs.size(), kUnsetLit);
    icg_prev_.assign(m_.icgs.size(), kUnsetLit);
    icg_cur_.assign(m_.icgs.size(), kUnsetLit);
  }

  void index_nets() {
    root_wave_.assign(nl_.num_nets(), nullptr);
    for (const PhaseWaveform& w : nl_.clocks().phases) {
      root_wave_[w.root.value()] = &w;
    }
    pi_of_net_.assign(nl_.num_nets(), kInvalidIndex);
    const std::vector<CellId> pis = nl_.data_inputs();
    require(pis.size() == pi_prev_.size() && pis.size() == pi_now_.size(),
            "equiv: PI literal count mismatch");
    for (std::size_t i = 0; i < pis.size(); ++i) {
      pi_of_net_[nl_.cell(pis[i]).out.value()] =
          static_cast<std::uint32_t>(i);
    }
    live_nets_.clear();
    for (std::uint32_t n = 0; n < nl_.num_nets(); ++n) {
      const Net& net = nl_.net(NetId{n});
      if (net.alive && net.driver.valid() && nl_.cell(net.driver).alive) {
        live_nets_.push_back(NetId{n});
      }
    }
  }

  void run_park() {
    park_ = true;
    now_ = nl_.clocks().period_ps - 1;
    for (std::size_t i = 0; i < m_.regs.size(); ++i) {
      reg_val_[i] = m_.state_in[i];
    }
    for (std::size_t j = 0; j < m_.icgs.size(); ++j) {
      icg_prev_[j] = m_.state_in[m_.regs.size() + j];
    }
    cur_.assign(nl_.num_nets(), kUnsetLit);
    for (const NetId net : live_nets_) eval_net(net);
    for (Lit& l : cur_) {
      if (l == kUnsetLit) l = kLitFalse;  // dangling nets settle to 0
    }
    prev_ = std::move(cur_);
    park_ = false;
  }

  void run_event(std::int64_t t) {
    now_ = t;
    // Phase 1: clock sampling and atomic edge-register update from pre-event
    // values (the simulator's update_registers step).
    sample_.assign(nl_.num_nets(), kUnsetLit);
    for (std::size_t i = 0; i < m_.regs.size(); ++i) {
      const Cell& cell = nl_.cell(m_.regs[i]);
      if (!samples_on_edge(cell.kind)) {
        reg_val_[i] = kUnsetLit;  // latches settle recursively below
        continue;
      }
      const NetId ck_net = cell.ins[clock_pin(cell.kind)];
      const Lit ck_new = clk_sample(ck_net);
      // Dual-edge FFs trigger on any clock toggle; everything else on the
      // rising edge only.
      const Lit trigger =
          cell.kind == CellKind::kDffDet
              ? aig_.lxor(ck_new, prev_[ck_net.value()])
              : aig_.land(ck_new, lit_not(prev_[ck_net.value()]));
      const Lit held = prev_[cell.out.value()];
      Lit d = prev_[cell.ins[0].value()];
      if (cell.kind == CellKind::kDffEn) {
        d = aig_.lmux(prev_[cell.ins[1].value()], d, held);
      }
      reg_val_[i] = aig_.lmux(trigger, d, held);
    }
    // Phase 2: full settle of every live net.
    cur_.assign(nl_.num_nets(), kUnsetLit);
    icg_cur_.assign(m_.icgs.size(), kUnsetLit);
    for (const NetId net : live_nets_) eval_net(net);
    finalize_icg_states();
    for (Lit& l : cur_) {
      if (l == kUnsetLit) l = kLitFalse;
    }
    prev_ = std::move(cur_);
    cur_.clear();
    icg_prev_ = icg_cur_;
  }

  void capture_outputs() {
    // Called right after run_event moved the settle into prev_.
    for (const CellId out : nl_.outputs()) {
      m_.po.push_back(prev_[nl_.cell(out).ins[0].value()]);
    }
  }

  // --- clock sampling (register-update time: data nets at pre-event values)

  Lit clk_sample(NetId net) {
    const std::uint32_t n = net.value();
    if (sample_[n] != kUnsetLit) return sample_[n];
    const Net& wire = nl_.net(net);
    Lit v = kLitFalse;
    if (!wire.driver.valid()) {
      sample_[n] = v;
      return v;
    }
    const Cell& cell = nl_.cell(wire.driver);
    switch (cell.kind) {
      case CellKind::kInput:
        v = root_wave_[n] != nullptr
                ? const_lit(phase_level(*root_wave_[n],
                                        nl_.clocks().period_ps, now_))
                : prev_[n];
        break;
      case CellKind::kConst0:
        v = kLitFalse;
        break;
      case CellKind::kConst1:
        v = kLitTrue;
        break;
      case CellKind::kClkBuf:
        v = clk_sample(cell.ins[0]);
        break;
      case CellKind::kClkInv:
        v = lit_not(clk_sample(cell.ins[0]));
        break;
      case CellKind::kIcgNoLatch:
        v = aig_.land(prev_[cell.ins[0].value()], clk_sample(cell.ins[1]));
        break;
      case CellKind::kIcg:
      case CellKind::kIcgM1: {
        const Lit ck = clk_sample(cell.ins[1]);
        const Lit transp = cell.kind == CellKind::kIcg
                               ? lit_not(ck)
                               : clk_sample(cell.ins[2]);
        const Lit state =
            aig_.lmux(transp, prev_[cell.ins[0].value()],
                      icg_prev_[icg_index_[wire.driver.value()]]);
        v = aig_.land(state, ck);
        break;
      }
      case CellKind::kClkDiv2: {
        // The simulator's clock propagation toggles the divider before any
        // register samples, so registers see the post-toggle state.
        const Lit rising = aig_.land(clk_sample(cell.ins[0]),
                                     lit_not(prev_[cell.ins[0].value()]));
        v = aig_.lxor(icg_prev_[icg_index_[wire.driver.value()]], rising);
        break;
      }
      default:
        v = prev_[n];  // data logic feeding a clock pin: pre-event value
        break;
    }
    sample_[n] = v;
    return v;
  }

  // --- full settle --------------------------------------------------------

  void store_memo(NetId net, Lit v) {
    if (assume_.empty()) {
      cur_[net.value()] = v;
    } else {
      ctx_memo_.back()[net.value()] = v;
    }
  }

  Lit eval_net(NetId net) {
    const std::uint32_t n = net.value();
    if (cur_[n] != kUnsetLit) return cur_[n];
    // Values memoized under outer assumptions stay valid in nested contexts
    // (an assumption only prunes a case split; it never changes a value).
    for (const auto& memo : ctx_memo_) {
      if (const auto it = memo.find(n); it != memo.end()) return it->second;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(assume_.size()) << 32) | n;
    if (!onstack_.insert(key).second) {
      std::string msg = "equiv: combinational cycle through net '" +
                        nl_.net(net).name + "' of '" + nl_.name() + "': ";
      for (const NetId s : stack_) msg += nl_.net(s).name + " -> ";
      msg += nl_.net(net).name;
      throw Error(msg);
    }
    stack_.push_back(net);
    const Lit v = compute_net(net);
    stack_.pop_back();
    onstack_.erase(key);
    store_memo(net, v);
    return v;
  }

  Lit compute_net(NetId net) {
    const Net& wire = nl_.net(net);
    if (!wire.driver.valid()) return kLitFalse;
    const Cell& cell = nl_.cell(wire.driver);
    switch (cell.kind) {
      case CellKind::kInput: {
        if (root_wave_[net.value()] != nullptr) {
          return const_lit(phase_level(*root_wave_[net.value()],
                                       nl_.clocks().period_ps, now_));
        }
        const std::uint32_t pi = pi_of_net_[net.value()];
        if (pi != kInvalidIndex) return park_ ? pi_prev_[pi] : pi_now_[pi];
        return kLitFalse;  // undriven pseudo-input
      }
      case CellKind::kConst0:
        return kLitFalse;
      case CellKind::kConst1:
        return kLitTrue;
      case CellKind::kDff:
      case CellKind::kDffEn:
      case CellKind::kDffDet:
      case CellKind::kLatchP:
        return reg_val_[reg_index_[wire.driver.value()]];
      case CellKind::kLatchH:
      case CellKind::kLatchL: {
        const std::uint32_t idx = reg_index_[wire.driver.value()];
        if (reg_val_[idx] != kUnsetLit) return reg_val_[idx];  // park
        return eval_latch(cell, net);
      }
      case CellKind::kIcg:
      case CellKind::kIcgM1:
        return eval_icg(cell, wire.driver, net);
      case CellKind::kClkDiv2: {
        const std::uint32_t idx = icg_index_[wire.driver.value()];
        if (park_) return icg_prev_[idx];  // stored toggle state
        if (icg_cur_[idx] != kUnsetLit) return icg_cur_[idx];
        const Lit rising = aig_.land(eval_net(cell.ins[0]),
                                     lit_not(prev_[cell.ins[0].value()]));
        const Lit state = aig_.lxor(icg_prev_[idx], rising);
        if (assume_.empty()) icg_cur_[idx] = state;
        return state;
      }
      case CellKind::kOutput:
        return kLitFalse;  // unreachable: kOutput drives no net
      default:
        return eval_comb_cell(cell);
    }
  }

  Lit eval_comb_cell(const Cell& cell) {
    Lit in[3] = {};
    for (std::size_t i = 0; i < cell.ins.size(); ++i) {
      in[i] = eval_net(cell.ins[i]);
    }
    switch (cell.kind) {
      case CellKind::kBuf:
      case CellKind::kClkBuf:
        return in[0];
      case CellKind::kInv:
      case CellKind::kClkInv:
        return lit_not(in[0]);
      case CellKind::kAnd2:
      case CellKind::kIcgNoLatch:
        return aig_.land(in[0], in[1]);
      case CellKind::kAnd3:
        return aig_.land(aig_.land(in[0], in[1]), in[2]);
      case CellKind::kOr2:
        return aig_.lor(in[0], in[1]);
      case CellKind::kOr3:
        return aig_.lor(aig_.lor(in[0], in[1]), in[2]);
      case CellKind::kNand2:
        return lit_not(aig_.land(in[0], in[1]));
      case CellKind::kNand3:
        return lit_not(aig_.land(aig_.land(in[0], in[1]), in[2]));
      case CellKind::kNor2:
        return lit_not(aig_.lor(in[0], in[1]));
      case CellKind::kNor3:
        return lit_not(aig_.lor(aig_.lor(in[0], in[1]), in[2]));
      case CellKind::kXor2:
        return aig_.lxor(in[0], in[1]);
      case CellKind::kXnor2:
        return lit_not(aig_.lxor(in[0], in[1]));
      case CellKind::kMux2:
        return aig_.lmux(in[2], in[1], in[0]);
      case CellKind::kAoi21:
        return lit_not(aig_.lor(aig_.land(in[0], in[1]), in[2]));
      case CellKind::kOai21:
        return lit_not(aig_.land(aig_.lor(in[0], in[1]), in[2]));
      case CellKind::kMaj3:
        return aig_.lor(aig_.lor(aig_.land(in[0], in[1]),
                                 aig_.land(in[0], in[2])),
                        aig_.land(in[1], in[2]));
      default:
        throw Error("equiv: unexpected cell kind in settle");
    }
  }

  /// Source net of a latch gate, traced back through clock buffers and
  /// inverters (CTS may hand the master and slave of one pair different
  /// buffered copies of the same gated clock; assumptions key on the source
  /// so the pair still splits correctly).
  std::pair<NetId, bool> clock_alias(NetId net) const {
    bool inverted = false;
    for (;;) {
      const CellId driver = nl_.net(net).driver;
      if (!driver.valid()) return {net, inverted};
      const Cell& cell = nl_.cell(driver);
      if (cell.kind == CellKind::kClkBuf || cell.kind == CellKind::kBuf) {
        net = cell.ins[0];
      } else if (cell.kind == CellKind::kClkInv ||
                 cell.kind == CellKind::kInv) {
        net = cell.ins[0];
        inverted = !inverted;
      } else {
        return {net, inverted};
      }
    }
  }

  Lit eval_latch(const Cell& cell, NetId out_net) {
    const bool open_high = cell.kind == CellKind::kLatchH;
    const auto [src, inverted] = clock_alias(cell.ins[1]);
    for (const auto& [anet, alevel] : assume_) {
      if (anet == src) {
        const bool gate_level = alevel != inverted;
        return gate_level == open_high ? eval_net(cell.ins[0])
                                       : prev_[out_net.value()];
      }
    }
    const Lit gate = eval_net(cell.ins[1]);
    const Lit open = open_high ? gate : lit_not(gate);
    if (open == kLitTrue) return eval_net(cell.ins[0]);
    if (open == kLitFalse) return prev_[out_net.value()];
    // Symbolic gate (a gated clock): evaluate the transparent branch under
    // the assumption that this latch is open. A master-slave pair on one
    // gated clock forms a false combinational cycle — master open forces
    // slave closed — which this case split breaks.
    assume_.emplace_back(src, open_high != inverted);
    ctx_memo_.emplace_back();
    const Lit d = eval_net(cell.ins[0]);
    ctx_memo_.pop_back();
    assume_.pop_back();
    return aig_.lmux(open, d, prev_[out_net.value()]);
  }

  Lit eval_icg(const Cell& cell, CellId id, NetId out_net) {
    const std::uint32_t idx = icg_index_[id.value()];
    const Lit ck = eval_net(cell.ins[1]);
    if (park_) {
      // Park reconstruction: the stored enable is the state variable itself.
      return aig_.land(icg_prev_[idx], ck);
    }
    if (cell.kind == CellKind::kIcg) {
      // The standard ICG's output never depends combinationally on its
      // enable: the internal latch is transparent only while CK is low, and
      // CK low forces the output low, so out = CK & state_prev exactly —
      // even when CK is symbolic (a chained gated clock). The next-event
      // state is finalized after the settle loop (finalize_icg_states),
      // because walking the enable cone here would recurse back through
      // gated latches whose evaluation is still in progress (DDCG D-vs-Q
      // XORs read the very latch this ICG clocks).
      const Lit out = aig_.land(icg_prev_[idx], ck);
      store_memo(out_net, out);
      return out;
    }
    // kIcgM1 samples transparency from a separate phase pin, so its output
    // can genuinely depend on the enable when both windows overlap. With the
    // gated clock settled low the output is low regardless; defer the enable
    // walk to finalize_icg_states — the enable (e.g. a DDCG D-vs-Q XOR)
    // may read back through the very latch this ICG clocks.
    if (ck == kLitFalse) {
      store_memo(out_net, kLitFalse);
      return kLitFalse;
    }
    Lit state;
    if (icg_cur_[idx] != kUnsetLit) {
      state = icg_cur_[idx];
    } else {
      const Lit transp = eval_net(cell.ins[2]);
      if (transp == kLitFalse) {
        state = icg_prev_[idx];
      } else if (transp == kLitTrue) {
        state = eval_net(cell.ins[0]);
      } else {
        state = aig_.lmux(transp, eval_net(cell.ins[0]), icg_prev_[idx]);
      }
      // Values computed under a latch-split assumption are conditional; the
      // unconditional top-level pass over all live nets fills the cache.
      if (assume_.empty()) icg_cur_[idx] = state;
    }
    return aig_.land(state, ck);
  }

  void finalize_icg_states() {
    // Deferred ICG next-state: state' = CK ? state : EN (transparent-low
    // enable latch). Runs after the settle loop, so the enable cone reads
    // fully memoized nets and cannot re-enter an in-progress latch.
    for (std::size_t j = 0; j < m_.icgs.size(); ++j) {
      if (icg_cur_[j] != kUnsetLit) continue;
      const Cell& cell = nl_.cell(m_.icgs[j]);
      if (cell.kind == CellKind::kClkDiv2) {
        // Divider with a dead output net: still advance its toggle state.
        const Lit rising = aig_.land(eval_net(cell.ins[0]),
                                     lit_not(prev_[cell.ins[0].value()]));
        icg_cur_[j] = aig_.lxor(icg_prev_[j], rising);
        continue;
      }
      const Lit ck = eval_net(cell.ins[1]);
      const Lit transp = cell.kind == CellKind::kIcg ? lit_not(ck)
                                                     : eval_net(cell.ins[2]);
      if (transp == kLitFalse) {
        icg_cur_[j] = icg_prev_[j];
      } else if (transp == kLitTrue) {
        icg_cur_[j] = eval_net(cell.ins[0]);
      } else {
        icg_cur_[j] =
            aig_.lmux(transp, eval_net(cell.ins[0]), icg_prev_[j]);
      }
    }
  }

  Aig& aig_;
  const Netlist& nl_;
  std::span<const Lit> pi_prev_, pi_now_;
  std::vector<std::int64_t> times_;
  Machine m_;

  std::vector<std::uint32_t> reg_index_, icg_index_;  // per cell
  std::vector<const PhaseWaveform*> root_wave_;       // per net
  std::vector<std::uint32_t> pi_of_net_;              // per net
  std::vector<NetId> live_nets_;
  std::vector<NetId> stack_;  // in-progress nets, for cycle diagnostics

  std::vector<Lit> reg_val_;             // per register, current event
  std::vector<Lit> icg_prev_, icg_cur_;  // per ICG enable latch
  std::vector<Lit> cur_, prev_, sample_;  // per net
  std::int64_t now_ = 0;
  bool park_ = false;

  std::vector<std::pair<NetId, bool>> assume_;  // latch-split assumptions
  std::vector<std::unordered_map<std::uint32_t, Lit>> ctx_memo_;
  std::unordered_set<std::uint64_t> onstack_;
};

// ---------------------------------------------------------------------------
// Lazy Tseitin encoding of AIG cones into the CDCL solver.
// ---------------------------------------------------------------------------

class AigCnf {
 public:
  AigCnf(const Aig& aig, SatSolver& sat) : aig_(aig), sat_(sat) {
    const int f = sat_.new_var();
    sat_.add_clause({SatSolver::neg_lit(f)});
    var_of_.push_back(f);  // node 0 pinned to false
  }

  int var_of(std::uint32_t node) {
    if (node >= var_of_.size() || var_of_[node] < 0) encode(node);
    return var_of_[node];
  }

  /// SAT variable of a node if its cone has been encoded, else -1.
  [[nodiscard]] int peek_var(std::uint32_t node) const {
    return node < var_of_.size() ? var_of_[node] : -1;
  }

  int sat_lit(Lit l) {
    const int v = var_of(lit_node(l));
    return lit_neg(l) ? SatSolver::neg_lit(v) : SatSolver::pos_lit(v);
  }

 private:
  [[nodiscard]] int lit_of_encoded(Lit l) const {
    const int v = var_of_[lit_node(l)];
    return lit_neg(l) ? SatSolver::neg_lit(v) : SatSolver::pos_lit(v);
  }

  void encode(std::uint32_t root) {
    if (var_of_.size() < aig_.num_nodes()) var_of_.resize(aig_.num_nodes(), -1);
    std::vector<std::uint32_t> stack{root};
    while (!stack.empty()) {
      const std::uint32_t n = stack.back();
      if (var_of_[n] >= 0) {
        stack.pop_back();
        continue;
      }
      if (aig_.is_input(n)) {
        var_of_[n] = sat_.new_var();
        stack.pop_back();
        continue;
      }
      const std::uint32_t a = lit_node(aig_.fanin0(n));
      const std::uint32_t b = lit_node(aig_.fanin1(n));
      if (var_of_[a] < 0) {
        stack.push_back(a);
        continue;
      }
      if (var_of_[b] < 0) {
        stack.push_back(b);
        continue;
      }
      const int v = sat_.new_var();
      var_of_[n] = v;
      const int sa = lit_of_encoded(aig_.fanin0(n));
      const int sb = lit_of_encoded(aig_.fanin1(n));
      sat_.add_clause({SatSolver::neg_lit(v), sa});
      sat_.add_clause({SatSolver::neg_lit(v), sb});
      sat_.add_clause(
          {SatSolver::pos_lit(v), SatSolver::negate(sa), SatSolver::negate(sb)});
      stack.pop_back();
    }
  }

  const Aig& aig_;
  SatSolver& sat_;
  std::vector<int> var_of_;  // per node; -1 = not yet encoded
};

// ---------------------------------------------------------------------------
// Candidate equivalence classes over machine nodes. Each group is a list of
// literals (sorted by node id, lowest = representative) claiming mutual
// equality; the polarity of the claim rides in the literal's complement bit.
// ---------------------------------------------------------------------------

class Classes {
 public:
  void build(std::span<const std::uint64_t> sig,
             std::span<const std::uint64_t> csig) {
    class_of_.assign(sig.size(), kInvalidIndex);
    lit_of_.assign(sig.size(), kLitFalse);
    std::unordered_map<std::uint64_t, std::vector<Lit>> buckets;
    for (std::uint32_t n = 0; n < sig.size(); ++n) {
      const bool neg = csig[n] < sig[n];
      buckets[std::min(sig[n], csig[n])].push_back(make_lit(n, neg));
    }
    std::vector<std::vector<Lit>> keep;
    for (auto& [key, members] : buckets) {
      if (members.size() >= 2) keep.push_back(std::move(members));
    }
    // Hash-map iteration order is unspecified; sort for reproducible runs.
    std::sort(keep.begin(), keep.end());
    for (auto& members : keep) commit(std::move(members));
  }

  [[nodiscard]] const std::vector<std::vector<Lit>>& groups() const {
    return groups_;
  }
  [[nodiscard]] std::uint32_t class_of(std::uint32_t node) const {
    return class_of_[node];
  }
  [[nodiscard]] Lit lit_of(std::uint32_t node) const { return lit_of_[node]; }
  [[nodiscard]] bool same_class(std::uint32_t a, std::uint32_t b) const {
    return class_of_[a] != kInvalidIndex && class_of_[a] == class_of_[b];
  }

  [[nodiscard]] std::size_t num_pairs() const {
    std::size_t pairs = 0;
    for (const auto& g : groups_) {
      if (g.size() >= 2) pairs += g.size() - 1;
    }
    return pairs;
  }

  /// Splits every group by the members' concrete values in `node_words`.
  void refine(std::span<const std::uint64_t> node_words) {
    const std::size_t end = groups_.size();  // appended groups are uniform
    for (std::size_t g = 0; g < end; ++g) split_group(g, node_words);
  }

  /// Drops one member (dissolving the group when it shrinks below 2).
  void remove(Lit member) {
    const std::uint32_t g = class_of_[lit_node(member)];
    if (g == kInvalidIndex) return;
    auto& group = groups_[g];
    std::erase(group, member);
    class_of_[lit_node(member)] = kInvalidIndex;
    if (group.size() < 2) {
      for (const Lit rest : group) class_of_[lit_node(rest)] = kInvalidIndex;
      group.clear();
    }
  }

 private:
  void commit(std::vector<Lit> members) {
    const auto idx = static_cast<std::uint32_t>(groups_.size());
    for (const Lit m : members) {
      class_of_[lit_node(m)] = idx;
      lit_of_[lit_node(m)] = m;
    }
    groups_.push_back(std::move(members));
  }

  void split_group(std::size_t g, std::span<const std::uint64_t> words) {
    if (groups_[g].size() < 2) return;
    std::vector<std::pair<std::uint64_t, std::vector<Lit>>> parts;
    std::unordered_map<std::uint64_t, std::size_t> index;
    for (const Lit m : groups_[g]) {
      const std::uint64_t w = Aig::word_of(words, m);
      const auto [it, fresh] = index.emplace(w, parts.size());
      if (fresh) parts.emplace_back(w, std::vector<Lit>{});
      parts[it->second].second.push_back(m);
    }
    if (parts.size() == 1) return;
    std::vector<Lit> slot;  // first surviving part keeps slot g
    for (auto& [w, part] : parts) {
      if (part.size() < 2) {
        for (const Lit m : part) class_of_[lit_node(m)] = kInvalidIndex;
        continue;
      }
      if (slot.empty()) {
        for (const Lit m : part) class_of_[lit_node(m)] = g;
        slot = std::move(part);
        continue;
      }
      const auto idx = static_cast<std::uint32_t>(groups_.size());
      for (const Lit m : part) class_of_[lit_node(m)] = idx;
      groups_.push_back(std::move(part));
    }
    groups_[g] = std::move(slot);
  }

  std::vector<std::vector<Lit>> groups_;
  std::vector<std::uint32_t> class_of_;  // per node; kInvalidIndex = unclassed
  std::vector<Lit> lit_of_;              // per node; valid when classed
};

// ---------------------------------------------------------------------------
// The SEC engine: random simulation -> base filter -> 1-step induction with
// speculative reduction -> output check -> BMC falsification.
// ---------------------------------------------------------------------------

class Checker {
 public:
  Checker(const Netlist& golden, const Netlist& revised,
          const SecOptions& opt)
      : golden_(golden), revised_(revised), opt_(opt), cnf_(aig_, sat_) {}

  SecResult run() {
    SecResult res;
    build_product(res.stats);
    sat_.set_conflict_limit(opt_.sat_conflict_limit);
    if (ma_.po == mb_.po) {
      res.status = SecStatus::kProven;
      res.detail = "primary outputs structurally identical";
      return finish(res);
    }
    if (random_sim(res)) return finish(res);
    cls_.build(sig_, csig_);
    base_filter();
    res.stats.candidate_pairs = cls_.num_pairs();
    const bool fixpoint = induction(res.stats);
    if (fixpoint) {
      switch (po_check(res)) {
        case SecStatus::kProven:
          res.status = SecStatus::kProven;
          res.detail = "proved by 1-step induction over " +
                       std::to_string(cls_.num_pairs()) +
                       " invariant pairs (" + std::to_string(res.stats.rounds) +
                       " rounds)";
          return finish(res);
        case SecStatus::kFalsified:
          return finish(res);
        case SecStatus::kUnknown:
          break;  // fall through to BMC
      }
    }
    retire_hypothesis();
    if (bmc(res)) return finish(res);
    res.status = SecStatus::kUnknown;
    if (res.detail.empty()) {
      res.detail = fixpoint
                       ? "induction fixpoint too weak to decide the outputs; "
                         "no divergence within " +
                             std::to_string(opt_.bmc_frames) + " BMC frames"
                       : "no induction fixpoint within " +
                             std::to_string(opt_.max_rounds) +
                             " rounds; no divergence within " +
                             std::to_string(opt_.bmc_frames) + " BMC frames";
    }
    return finish(res);
  }

 private:
  // Machine input index layout (creation order): [0,P) previous-cycle PIs,
  // [P,2P) current-cycle PIs, then golden state, then revised state.

  void build_product(SecStats& stats) {
    num_pi_ = golden_.data_inputs().size();
    const std::vector<std::size_t> pin_map = map_data_inputs(golden_, revised_);
    for (std::size_t i = 0; i < num_pi_; ++i) pi_prev_.push_back(aig_.add_input());
    for (std::size_t i = 0; i < num_pi_; ++i) pi_now_.push_back(aig_.add_input());
    std::vector<Lit> r_prev(num_pi_), r_now(num_pi_);
    for (std::size_t j = 0; j < num_pi_; ++j) {
      r_prev[j] = pi_prev_[pin_map[j]];
      r_now[j] = pi_now_[pin_map[j]];
    }
    ma_ = build_machine(aig_, golden_, pi_prev_, pi_now_);
    mb_ = build_machine(aig_, revised_, r_prev, r_now);
    require(ma_.po.size() == mb_.po.size(),
            "equiv: primary output counts differ");
    n_machine_ = aig_.num_nodes();
    num_in_ = aig_.num_inputs();
    const auto ra = reset_state(golden_, ma_);
    const auto rb = reset_state(revised_, mb_);
    reset_.assign(ra.begin(), ra.end());
    reset_.insert(reset_.end(), rb.begin(), rb.end());
    next_state_ = ma_.next_state;
    next_state_.insert(next_state_.end(), mb_.next_state.begin(),
                       mb_.next_state.end());
    stats.golden_state_bits = ma_.state_in.size();
    stats.revised_state_bits = mb_.state_in.size();
  }

  SecResult& finish(SecResult& res) {
    res.stats.aig_nodes = aig_.num_nodes();
    res.stats.sat_calls = sat_.num_solve_calls;
    res.stats.sat_conflicts = sat_.num_conflicts;
    return res;
  }

  static std::uint64_t broadcast(bool b) { return b ? ~0ull : 0ull; }

  /// Replays, minimizes and reports a model-level counterexample. Returns
  /// false when the simulator does not reproduce it (model/semantics gap).
  bool falsify(Stimulus stimulus, SecResult& res, const std::string& origin) {
    Counterexample cex;
    cex.inputs = std::move(stimulus);
    if (!replay(golden_, revised_, cex)) {
      if (res.detail.empty()) {
        res.detail = origin + ": model counterexample failed simulator replay";
      }
      return false;
    }
    if (opt_.minimize_cex) minimize(golden_, revised_, cex);
    res.status = SecStatus::kFalsified;
    res.cex = std::move(cex);
    res.detail = origin + ": " + res.cex.to_string();
    return true;
  }

  /// 64-lane random simulation from reset: accumulates candidate signatures
  /// and falsifies outright when an output word diverges.
  bool random_sim(SecResult& res) {
    Rng rng(opt_.seed);
    sig_.assign(n_machine_, 0);
    csig_.assign(n_machine_, 0);
    std::vector<std::uint64_t> in(num_in_, 0);
    for (std::size_t s = 0; s < reset_.size(); ++s) {
      in[2 * num_pi_ + s] = broadcast(reset_[s] != 0);
    }
    std::vector<std::uint64_t> prev_pi(num_pi_, 0);
    bool gave_up_on_replay = false;
    for (int f = 0; f < opt_.sim_frames; ++f) {
      std::vector<std::uint64_t> pis(num_pi_);
      for (auto& w : pis) w = rng.next();
      for (std::size_t i = 0; i < num_pi_; ++i) {
        in[i] = prev_pi[i];
        in[num_pi_ + i] = pis[i];
      }
      aig_.simulate(in, words_);
      pi_hist_.push_back(pis);
      for (std::size_t k = 0; k < ma_.po.size() && !gave_up_on_replay; ++k) {
        const std::uint64_t diff = Aig::word_of(words_, ma_.po[k]) ^
                                   Aig::word_of(words_, mb_.po[k]);
        if (diff == 0) continue;
        const int lane = std::countr_zero(diff);
        Stimulus stim(static_cast<std::size_t>(f) + 1,
                      std::vector<std::uint8_t>(num_pi_, 0));
        for (std::size_t c = 0; c <= static_cast<std::size_t>(f); ++c) {
          for (std::size_t i = 0; i < num_pi_; ++i) {
            stim[c][i] =
                static_cast<std::uint8_t>((pi_hist_[c][i] >> lane) & 1);
          }
        }
        if (falsify(std::move(stim), res, "random simulation")) return true;
        gave_up_on_replay = true;  // keep simulating for signatures
      }
      constexpr std::uint64_t kMul = 0x9E3779B97F4A7C15ull;
      for (std::uint32_t n = 0; n < n_machine_; ++n) {
        sig_[n] = sig_[n] * kMul + words_[n];
        csig_[n] = csig_[n] * kMul + ~words_[n];
      }
      for (std::size_t s = 0; s < next_state_.size(); ++s) {
        in[2 * num_pi_ + s] = Aig::word_of(words_, next_state_[s]);
      }
      prev_pi = std::move(pis);
    }
    return false;
  }

  /// SAT query: can literals a and b differ? When `constrained` and a round's
  /// candidate constraints are active, the query runs under the induction
  /// hypothesis (frame-1 candidate equalities). Uses an activation variable
  /// so the shared clause database keeps growing monotonically across
  /// thousands of queries.
  SatResult check_diff(Lit a, Lit b, bool constrained = false) {
    const int sa = cnf_.sat_lit(a);
    const int sb = cnf_.sat_lit(b);
    const int d = SatSolver::pos_lit(sat_.new_var());
    sat_.add_clause({SatSolver::negate(d), sa, sb});
    sat_.add_clause({SatSolver::negate(d), SatSolver::negate(sa),
                     SatSolver::negate(sb)});
    std::array<int, 2> assume{d, d};
    std::size_t n_assume = 1;
    if (constrained && hypothesis_ >= 0) assume[n_assume++] = hypothesis_;
    const SatResult r =
        sat_.solve(std::span<const int>(assume.data(), n_assume));
    sat_.add_clause({SatSolver::negate(d)});  // retire the miter
    return r;
  }

  /// Asserts the current candidate equalities over the *original* frame-1
  /// functions, guarded by a fresh activation literal. Obligations checked
  /// under this assumption test exactly the inductive step "equalities at
  /// frame 1 imply equalities at frame 2" — without it the queries range
  /// over unconstrained states and refute pairs that are perfectly
  /// 1-inductive, starving the fixpoint (classic van Eijk constraints).
  void assert_hypothesis() {
    retire_hypothesis();
    hypothesis_ = SatSolver::pos_lit(sat_.new_var());
    const int na = SatSolver::negate(hypothesis_);
    for (const auto& group : cls_.groups()) {
      if (group.size() < 2) continue;
      const int sr = cnf_.sat_lit(group[0]);
      for (std::size_t k = 1; k < group.size(); ++k) {
        const int sm = cnf_.sat_lit(group[k]);
        sat_.add_clause({na, sm, SatSolver::negate(sr)});
        sat_.add_clause({na, SatSolver::negate(sm), sr});
      }
    }
  }

  void retire_hypothesis() {
    if (hypothesis_ >= 0) sat_.add_clause({SatSolver::negate(hypothesis_)});
    hypothesis_ = -1;
  }

  [[nodiscard]] bool model_bit(Lit l) const {
    const int v = cnf_.peek_var(lit_node(l));
    const bool val = v >= 0 && sat_.model_value(v);
    return lit_neg(l) ? !val : val;
  }

  /// Frame-0 instantiation: state pinned to reset, previous-cycle PIs to 0
  /// (the simulator's post-reset PI value), current PIs left free.
  void build_base() {
    std::vector<Lit> map(num_in_);
    for (std::size_t i = 0; i < num_pi_; ++i) {
      map[i] = kLitFalse;
      map[num_pi_ + i] = pi_now_[i];
    }
    for (std::size_t s = 0; s < reset_.size(); ++s) {
      map[2 * num_pi_ + s] = reset_[s] ? kLitTrue : kLitFalse;
    }
    base_ = aig_.compose(n_machine_, map);
  }

  /// Drops candidates that already fail in the reset frame, so induction
  /// only ever weakens a base-proven invariant set.
  void base_filter() {
    build_base();
    const std::size_t end = cls_.groups().size();
    for (std::size_t g = 0; g < end; ++g) {
      std::vector<Lit> doomed;
      const auto& group = cls_.groups()[g];
      for (std::size_t k = 1; k < group.size(); ++k) {
        const Lit b_rep = apply_map(base_, group[0]);
        const Lit b_mem = apply_map(base_, group[k]);
        if (b_rep == b_mem) continue;
        if (check_diff(b_rep, b_mem) != SatResult::kUnsat) {
          doomed.push_back(group[k]);
        }
      }
      for (const Lit m : doomed) cls_.remove(m);
    }
  }

  /// A SAT witness refuted one obligation: re-simulate both frames with the
  /// model (frame 2 fed the *real* frame-1 next-state) and split every class
  /// by the real frame-2 values.
  void refine_by_witness() {
    std::vector<std::uint64_t> in(aig_.num_inputs(), 0);
    for (std::size_t i = 0; i < num_pi_; ++i) {
      in[i] = broadcast(model_bit(pi_prev_[i]));
      in[num_pi_ + i] = broadcast(model_bit(pi_now_[i]));
    }
    for (std::size_t s = 0; s < next_state_.size(); ++s) {
      const Lit state_in = s < ma_.state_in.size()
                               ? ma_.state_in[s]
                               : mb_.state_in[s - ma_.state_in.size()];
      in[2 * num_pi_ + s] = broadcast(model_bit(state_in));
    }
    aig_.simulate(in, words_);
    std::vector<std::uint64_t> ns(next_state_.size());
    for (std::size_t s = 0; s < next_state_.size(); ++s) {
      ns[s] = Aig::word_of(words_, next_state_[s]);
    }
    std::vector<std::uint64_t> in2(aig_.num_inputs(), 0);
    for (std::size_t i = 0; i < num_pi_; ++i) {
      in2[i] = in[num_pi_ + i];
      in2[num_pi_ + i] = broadcast(model_bit(i2_[i]));
    }
    for (std::size_t s = 0; s < next_state_.size(); ++s) {
      in2[2 * num_pi_ + s] = ns[s];
    }
    aig_.simulate(in2, words_);
    cls_.refine(words_);
  }

  /// Van Eijk signal correspondence with speculative reduction: unrolls a
  /// second time frame with every candidate member replaced by its class
  /// representative, discharging one proof obligation per substitution.
  /// Returns true once a full round passes with no refutation.
  bool induction(SecStats& stats) {
    for (std::size_t i = 0; i < num_pi_; ++i) i2_.push_back(aig_.add_input());
    for (int round = 0; round < opt_.max_rounds; ++round) {
      stats.rounds = round + 1;
      bool changed = false;
      assert_hypothesis();
      std::vector<Lit> spec1(n_machine_);
      for (std::uint32_t n = 0; n < n_machine_; ++n) spec1[n] = make_lit(n);
      for (const auto& group : cls_.groups()) {
        for (std::size_t k = 1; k < group.size(); ++k) {
          spec1[lit_node(group[k])] = lit_xor(group[0], lit_neg(group[k]));
        }
      }
      f2_.assign(n_machine_, kLitFalse);
      for (std::uint32_t n = 1; n < n_machine_; ++n) {
        Lit computed;
        if (aig_.is_input(n)) {
          const std::uint32_t i = aig_.input_index(n);
          if (i < num_pi_) {
            computed = apply_map(spec1, pi_now_[i]);  // pi_prev2 == pi_now1
          } else if (i < 2 * num_pi_) {
            computed = i2_[i - num_pi_];
          } else {
            computed = apply_map(spec1, next_state_[i - 2 * num_pi_]);
          }
        } else {
          computed = aig_.land(apply_map(f2_, aig_.fanin0(n)),
                               apply_map(f2_, aig_.fanin1(n)));
        }
        f2_[n] = computed;
        const std::uint32_t g = cls_.class_of(n);
        if (g == kInvalidIndex) continue;
        const Lit rep = cls_.groups()[g][0];
        if (lit_node(rep) == n) continue;
        const Lit member = cls_.lit_of(n);
        const Lit target =
            lit_xor(apply_map(f2_, rep), lit_neg(member));
        if (computed == target) {
          ++stats.proven_structural;
          f2_[n] = target;
          continue;
        }
        switch (check_diff(computed, target, /*constrained=*/true)) {
          case SatResult::kUnsat:
            f2_[n] = target;  // speculation holds for downstream logic
            break;
          case SatResult::kUnknown:
            cls_.remove(member);  // sound: only weakens the invariant
            changed = true;
            break;
          case SatResult::kSat:
            refine_by_witness();
            if (cls_.same_class(n, lit_node(rep))) {
              cls_.remove(member);  // witness did not split: force progress
            }
            changed = true;
            break;
        }
      }
      if (!changed) return true;  // hypothesis stays active for po_check()
    }
    retire_hypothesis();
    return false;
  }

  /// Output equality under the proven invariants: the reset frame via the
  /// base instantiation (a SAT hit here is a real one-cycle cex), every
  /// later frame via the speculated second time frame.
  SecStatus po_check(SecResult& res) {
    for (std::size_t k = 0; k < ma_.po.size(); ++k) {
      const Lit a0 = apply_map(base_, ma_.po[k]);
      const Lit b0 = apply_map(base_, mb_.po[k]);
      if (a0 != b0) {
        switch (check_diff(a0, b0)) {
          case SatResult::kUnsat:
            break;
          case SatResult::kSat: {
            Stimulus stim(1, std::vector<std::uint8_t>(num_pi_, 0));
            for (std::size_t i = 0; i < num_pi_; ++i) {
              stim[0][i] = model_bit(pi_now_[i]) ? 1 : 0;
            }
            if (falsify(std::move(stim), res, "reset-frame check")) {
              return SecStatus::kFalsified;
            }
            return SecStatus::kUnknown;
          }
          case SatResult::kUnknown:
            return SecStatus::kUnknown;
        }
      }
      const Lit a2 = apply_map(f2_, ma_.po[k]);
      const Lit b2 = apply_map(f2_, mb_.po[k]);
      if (a2 == b2) continue;
      if (check_diff(a2, b2, /*constrained=*/true) != SatResult::kUnsat) {
        return SecStatus::kUnknown;
      }
    }
    return SecStatus::kProven;
  }

  /// Bounded model check from the concrete reset state — the falsification
  /// backstop when induction is inconclusive. Constant folding usually kills
  /// the miter for the first frames without any SAT call.
  bool bmc(SecResult& res) {
    std::vector<std::vector<Lit>> frame_pi;
    std::vector<Lit> map(num_in_);
    for (std::size_t s = 0; s < reset_.size(); ++s) {
      map[2 * num_pi_ + s] = reset_[s] ? kLitTrue : kLitFalse;
    }
    std::vector<Lit> prev(num_pi_, kLitFalse);
    for (int f = 0; f < opt_.bmc_frames; ++f) {
      frame_pi.emplace_back(num_pi_);
      for (std::size_t i = 0; i < num_pi_; ++i) {
        frame_pi[f][i] = aig_.add_input();
        map[i] = prev[i];
        map[num_pi_ + i] = frame_pi[f][i];
      }
      const std::vector<Lit> fm = aig_.compose(n_machine_, map);
      Lit miter = kLitFalse;
      for (std::size_t k = 0; k < ma_.po.size(); ++k) {
        miter = aig_.lor(miter, aig_.lxor(apply_map(fm, ma_.po[k]),
                                          apply_map(fm, mb_.po[k])));
      }
      res.stats.bmc_depth = f + 1;
      if (miter != kLitFalse) {
        const int ml = cnf_.sat_lit(miter);
        const std::array<int, 1> assume{ml};
        switch (sat_.solve(assume)) {
          case SatResult::kSat: {
            Stimulus stim(static_cast<std::size_t>(f) + 1,
                          std::vector<std::uint8_t>(num_pi_, 0));
            for (std::size_t c = 0; c <= static_cast<std::size_t>(f); ++c) {
              for (std::size_t i = 0; i < num_pi_; ++i) {
                stim[c][i] = model_bit(frame_pi[c][i]) ? 1 : 0;
              }
            }
            return falsify(std::move(stim), res,
                           "bounded model check (depth " +
                               std::to_string(f + 1) + ")");
          }
          case SatResult::kUnknown:
            res.detail = "SAT budget exhausted at BMC frame " +
                         std::to_string(f + 1);
            return false;
          case SatResult::kUnsat:
            sat_.add_clause({SatSolver::negate(ml)});
            break;
        }
      }
      for (std::size_t s = 0; s < reset_.size(); ++s) {
        map[2 * num_pi_ + s] = apply_map(fm, next_state_[s]);
      }
      prev = frame_pi[f];
    }
    return false;
  }

  const Netlist& golden_;
  const Netlist& revised_;
  SecOptions opt_;

  Aig aig_;
  SatSolver sat_;
  AigCnf cnf_;
  Classes cls_;
  int hypothesis_ = -1;  // activation literal of the asserted candidate set

  Machine ma_, mb_;
  std::size_t num_pi_ = 0;
  std::size_t n_machine_ = 0;  // AIG nodes when both machines were built
  std::size_t num_in_ = 0;     // AIG inputs ditto (2*P + states)
  std::vector<Lit> pi_prev_, pi_now_, i2_;
  std::vector<std::uint8_t> reset_;  // golden then revised
  std::vector<Lit> next_state_;      // ditto

  std::vector<std::uint64_t> sig_, csig_, words_;
  std::vector<std::vector<std::uint64_t>> pi_hist_;
  std::vector<Lit> base_, f2_;
};

}  // namespace

SecResult check_sequential_equivalence(const Netlist& golden,
                                       const Netlist& revised,
                                       const SecOptions& options) {
  try {
    Checker checker(golden, revised, options);
    return checker.run();
  } catch (const Error& e) {
    SecResult res;
    res.status = SecStatus::kUnknown;
    res.detail = e.what();
    return res;
  }
}

Machine build_machine(Aig& aig, const Netlist& netlist,
                      std::span<const Lit> pi_prev,
                      std::span<const Lit> pi_now) {
  return CycleBuilder(aig, netlist, pi_prev, pi_now).build();
}

std::vector<std::uint8_t> reset_state(const Netlist& netlist,
                                      const Machine& machine) {
  const Simulator sim(netlist);  // constructor runs reset()
  std::vector<std::uint8_t> bits;
  bits.reserve(machine.state_in.size());
  for (const CellId reg : machine.regs) {
    bits.push_back(sim.value(netlist.cell(reg).out) ? 1 : 0);
  }
  for (const CellId icg : machine.icgs) {
    bits.push_back(sim.icg_state(icg) ? 1 : 0);
  }
  return bits;
}

std::string_view status_name(SecStatus status) {
  switch (status) {
    case SecStatus::kProven: return "proven";
    case SecStatus::kFalsified: return "falsified";
    case SecStatus::kUnknown: return "unknown";
  }
  return "?";
}

}  // namespace tp::equiv
