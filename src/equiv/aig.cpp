#include "src/equiv/aig.hpp"

#include "src/util/log.hpp"

namespace tp::equiv {

Aig::Aig() {
  nodes_.push_back(Node{0, 0});  // node 0: constant false
}

Lit Aig::add_input() {
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{kInputMark, static_cast<Lit>(num_inputs_)});
  ++num_inputs_;
  return make_lit(node);
}

Lit Aig::land(Lit a, Lit b) {
  if (a > b) std::swap(a, b);  // canonical operand order (a <= b)
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  if (const auto it = strash_.find(key); it != strash_.end()) {
    return make_lit(it->second);
  }
  require(nodes_.size() < (1ull << 31) - 1, "Aig: node limit exceeded");
  const auto node = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{a, b});
  strash_.emplace(key, node);
  return make_lit(node);
}

Lit Aig::lxor(Lit a, Lit b) {
  return lor(land(a, lit_not(b)), land(lit_not(a), b));
}

Lit Aig::lmux(Lit s, Lit t, Lit e) {
  if (t == e) return t;
  return lor(land(s, t), land(lit_not(s), e));
}

void Aig::simulate(std::span<const std::uint64_t> input_words,
                   std::vector<std::uint64_t>& node_words) const {
  node_words.resize(nodes_.size());
  node_words[0] = 0;
  for (std::uint32_t n = 1; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    if (node.a == kInputMark) {
      node_words[n] = input_words[node.b];
    } else {
      node_words[n] = word_of(node_words, node.a) & word_of(node_words, node.b);
    }
  }
}

std::vector<Lit> Aig::compose(std::size_t num_nodes,
                              std::span<const Lit> input_map) {
  std::vector<Lit> map(num_nodes);
  map[0] = kLitFalse;
  for (std::uint32_t n = 1; n < num_nodes; ++n) {
    const Node node = nodes_[n];  // copy: land() may reallocate nodes_
    if (node.a == kInputMark) {
      map[n] = input_map[node.b];
    } else {
      map[n] = land(lit_xor(map[lit_node(node.a)], lit_neg(node.a)),
                    lit_xor(map[lit_node(node.b)], lit_neg(node.b)));
    }
  }
  return map;
}

}  // namespace tp::equiv
