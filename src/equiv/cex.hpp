// Counterexample handling for the sequential equivalence checker.
//
// A falsification found on the AIG model is only trusted after it has been
// replayed through the reference event-driven simulator (tp::Simulator) on
// both netlists — the replay guards against any divergence between the
// symbolic one-cycle model and the simulator's event semantics. Confirmed
// counterexamples are then shrunk with a ddmin pass: the stimulus is
// truncated to the first mismatching cycle and input bits are cleared in
// progressively finer chunks while the mismatch persists, which typically
// reduces a random SAT witness to a handful of set bits that point straight
// at the faulty logic.
#pragma once

#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/sim/stimulus.hpp"

namespace tp::equiv {

struct Counterexample {
  /// Stimulus in the *golden* netlist's data_inputs() order, starting at the
  /// cycle right after reset (no warmup).
  Stimulus inputs;
  /// First cycle at which the designs disagree (index into `inputs`).
  std::ptrdiff_t cycle = -1;
  /// Index and name (from the golden netlist) of the first differing output.
  std::size_t output = 0;
  std::string output_name;
  bool expected = false;  // golden value at (cycle, output)
  bool got = false;       // revised value
  /// True once the mismatch has been reproduced by tp::Simulator.
  bool confirmed = false;

  /// Number of 1-bits in the stimulus (the quantity ddmin minimizes).
  [[nodiscard]] std::size_t ones() const;
  [[nodiscard]] std::string to_string() const;
};

/// Pin permutation from `from.data_inputs()` order into `to.data_inputs()`
/// order, matched by input name; position-matched when the name sets differ.
/// Throws tp::Error when the input counts differ.
std::vector<std::size_t> map_data_inputs(const Netlist& from,
                                         const Netlist& to);

/// Simulates `netlist` from reset under `stimulus` (given in the netlist's
/// own data_inputs() order, no warmup discarded) with the style-appropriate
/// snapshot event, returning one output vector per cycle.
OutputStream simulate_outputs(const Netlist& netlist, const Stimulus& stimulus);

/// Replays cex.inputs through both netlists with tp::Simulator and fills the
/// mismatch fields (cycle, output, expected/got, confirmed). Returns true
/// when the simulators disagree on some cycle.
bool replay(const Netlist& golden, const Netlist& revised, Counterexample& cex);

/// Shrinks a confirmed counterexample: truncates to the first mismatching
/// cycle, ddmin-clears stimulus bits, then refreshes the mismatch fields via
/// a final replay. No-op for unconfirmed counterexamples.
void minimize(const Netlist& golden, const Netlist& revised,
              Counterexample& cex);

}  // namespace tp::equiv
