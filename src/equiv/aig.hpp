// And-Inverter Graph with structural hashing and constant propagation.
//
// The equivalence checker (sec.hpp) compiles both netlists' one-cycle
// transition functions into a single shared Aig. Sharing one graph means
// structural hashing deduplicates identical logic *across* the two designs
// for free: after the conversion transforms, most combinational cones of the
// golden and revised designs hash to the same nodes, and their equivalence
// never reaches the SAT solver.
//
// Representation: node 0 is the constant false; every other node is either a
// primary input or a two-input AND. Edges are literals — a node index shifted
// left by one with the low bit carrying complementation — so inversion is
// free. new_and() applies the standard one-level simplifications (constant
// folding, idempotence, complement annihilation) and canonicalizes operand
// order before consulting the hash table, so structurally equal cones always
// return the same literal.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace tp::equiv {

/// AIG edge: node index * 2 + complemented bit.
using Lit = std::uint32_t;

inline constexpr Lit kLitFalse = 0;  // node 0, plain
inline constexpr Lit kLitTrue = 1;   // node 0, complemented

[[nodiscard]] constexpr std::uint32_t lit_node(Lit l) { return l >> 1; }
[[nodiscard]] constexpr bool lit_neg(Lit l) { return (l & 1u) != 0; }
[[nodiscard]] constexpr Lit make_lit(std::uint32_t node, bool neg = false) {
  return (node << 1) | static_cast<Lit>(neg);
}
[[nodiscard]] constexpr Lit lit_not(Lit l) { return l ^ 1u; }
[[nodiscard]] constexpr Lit lit_xor(Lit l, bool neg) {
  return l ^ static_cast<Lit>(neg);
}

class Aig {
 public:
  Aig();

  /// Appends a fresh primary-input node and returns its (plain) literal.
  Lit add_input();

  // --- boolean operators (all structurally hashed) -------------------------

  Lit land(Lit a, Lit b);
  Lit lor(Lit a, Lit b) { return lit_not(land(lit_not(a), lit_not(b))); }
  Lit lxor(Lit a, Lit b);
  /// s ? t : e.
  Lit lmux(Lit s, Lit t, Lit e);

  // --- structure -----------------------------------------------------------

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_inputs() const { return num_inputs_; }
  [[nodiscard]] bool is_input(std::uint32_t node) const {
    return nodes_[node].a == kInputMark;
  }
  /// Position of an input node in creation order (valid for inputs only).
  [[nodiscard]] std::uint32_t input_index(std::uint32_t node) const {
    return nodes_[node].b;
  }
  [[nodiscard]] Lit fanin0(std::uint32_t node) const { return nodes_[node].a; }
  [[nodiscard]] Lit fanin1(std::uint32_t node) const { return nodes_[node].b; }

  // --- evaluation ----------------------------------------------------------

  /// 64-way parallel evaluation: `input_words[input_index]` carries 64
  /// independent assignments; on return `node_words[node]` holds the value of
  /// every node under each of them. `node_words` is resized as needed.
  void simulate(std::span<const std::uint64_t> input_words,
                std::vector<std::uint64_t>& node_words) const;

  /// Word value of a literal given a filled `node_words`.
  [[nodiscard]] static std::uint64_t word_of(
      std::span<const std::uint64_t> node_words, Lit l) {
    const std::uint64_t w = node_words[lit_node(l)];
    return lit_neg(l) ? ~w : w;
  }

  // --- composition ---------------------------------------------------------

  /// Re-instantiates nodes [0, num_nodes) of this graph into this same graph
  /// with every input node replaced by `input_map[input_index]`. Returns the
  /// node -> literal translation table (constant folding applies, so a node
  /// may map to a constant or to an existing node). This is how sec.cpp
  /// unrolls the transition function into successive time frames.
  [[nodiscard]] std::vector<Lit> compose(std::size_t num_nodes,
                                         std::span<const Lit> input_map);

 private:
  static constexpr Lit kInputMark = 0xFFFFFFFFu;

  struct Node {
    Lit a = 0;  // kInputMark for inputs
    Lit b = 0;  // input index for inputs
  };

  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, std::uint32_t> strash_;
  std::size_t num_inputs_ = 0;
};

}  // namespace tp::equiv
