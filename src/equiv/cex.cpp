#include "src/equiv/cex.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "src/util/log.hpp"

namespace tp::equiv {

std::size_t Counterexample::ones() const {
  std::size_t n = 0;
  for (const auto& cycle_bits : inputs) {
    for (const std::uint8_t b : cycle_bits) n += b != 0;
  }
  return n;
}

std::string Counterexample::to_string() const {
  std::ostringstream out;
  if (cycle < 0) {
    out << "no mismatch";
    return out.str();
  }
  out << "cycle " << cycle << " output '" << output_name << "' expected "
      << int{expected} << " got " << int{got} << " ("
      << (confirmed ? "simulator-confirmed" : "UNCONFIRMED") << ", "
      << inputs.size() << " cycles, " << ones() << " set bits)";
  return out.str();
}

std::vector<std::size_t> map_data_inputs(const Netlist& from,
                                         const Netlist& to) {
  const std::vector<CellId> from_pis = from.data_inputs();
  const std::vector<CellId> to_pis = to.data_inputs();
  require(from_pis.size() == to_pis.size(),
          "equiv: netlists have different data-input counts");
  std::unordered_map<std::string_view, std::size_t> by_name;
  for (std::size_t i = 0; i < from_pis.size(); ++i) {
    by_name.emplace(from.cell(from_pis[i]).name, i);
  }
  std::vector<std::size_t> map(to_pis.size());
  bool names_match = by_name.size() == from_pis.size();
  for (std::size_t j = 0; names_match && j < to_pis.size(); ++j) {
    const auto it = by_name.find(to.cell(to_pis[j]).name);
    if (it == by_name.end()) {
      names_match = false;
    } else {
      map[j] = it->second;
    }
  }
  if (!names_match) {  // positional fallback
    for (std::size_t j = 0; j < map.size(); ++j) map[j] = j;
  }
  return map;
}

OutputStream simulate_outputs(const Netlist& netlist,
                              const Stimulus& stimulus) {
  SimOptions options;
  options.snapshot_event = netlist.clocks().phases.size() == 3 ? 1 : 0;
  Simulator sim(netlist, options);
  OutputStream stream;
  stream.reserve(stimulus.size());
  for (const auto& pi_values : stimulus) {
    sim.step(pi_values);
    stream.push_back(sim.outputs());
  }
  return stream;
}

namespace {

/// Remaps a golden-ordered stimulus into `to`-order using `map` (from
/// map_data_inputs(golden, to)).
Stimulus remap_stimulus(const Stimulus& stimulus,
                        const std::vector<std::size_t>& map) {
  Stimulus out(stimulus.size());
  for (std::size_t c = 0; c < stimulus.size(); ++c) {
    out[c].resize(map.size());
    for (std::size_t j = 0; j < map.size(); ++j) {
      out[c][j] = stimulus[c][map[j]];
    }
  }
  return out;
}

/// True when the given golden-ordered stimulus makes the two netlists
/// disagree on any cycle/output.
bool mismatches(const Netlist& golden, const Netlist& revised,
                const std::vector<std::size_t>& map, const Stimulus& inputs) {
  const OutputStream a = simulate_outputs(golden, inputs);
  const OutputStream b = simulate_outputs(revised, remap_stimulus(inputs, map));
  return first_mismatch(a, b) >= 0;
}

}  // namespace

bool replay(const Netlist& golden, const Netlist& revised,
            Counterexample& cex) {
  const std::vector<std::size_t> map = map_data_inputs(golden, revised);
  const OutputStream a = simulate_outputs(golden, cex.inputs);
  const OutputStream b =
      simulate_outputs(revised, remap_stimulus(cex.inputs, map));
  const std::ptrdiff_t cycle = first_mismatch(a, b);
  cex.cycle = cycle;
  cex.confirmed = cycle >= 0;
  if (cycle < 0) return false;
  for (std::size_t k = 0; k < a[cycle].size(); ++k) {
    if (a[cycle][k] != b[cycle][k]) {
      cex.output = k;
      cex.output_name = golden.cell(golden.outputs()[k]).name;
      cex.expected = a[cycle][k] != 0;
      cex.got = b[cycle][k] != 0;
      break;
    }
  }
  return true;
}

void minimize(const Netlist& golden, const Netlist& revised,
              Counterexample& cex) {
  if (!cex.confirmed || cex.cycle < 0) return;
  const std::vector<std::size_t> map = map_data_inputs(golden, revised);
  cex.inputs.resize(cex.cycle + 1);

  const std::size_t num_pis = cex.inputs.empty() ? 0 : cex.inputs[0].size();
  // Flattened positions of the set bits: candidates for clearing.
  std::vector<std::size_t> ones;
  for (std::size_t c = 0; c < cex.inputs.size(); ++c) {
    for (std::size_t i = 0; i < num_pis; ++i) {
      if (cex.inputs[c][i]) ones.push_back(c * num_pis + i);
    }
  }
  const auto build = [&](const std::vector<std::size_t>& keep) {
    Stimulus s(cex.inputs.size(), std::vector<std::uint8_t>(num_pis, 0));
    for (const std::size_t pos : keep) s[pos / num_pis][pos % num_pis] = 1;
    return s;
  };

  // Classic ddmin over the set-bit positions: try dropping ever finer chunks
  // while the mismatch survives.
  std::size_t granularity = 2;
  while (ones.size() >= 2) {
    const std::size_t chunk =
        std::max<std::size_t>(1, (ones.size() + granularity - 1) / granularity);
    bool reduced = false;
    for (std::size_t begin = 0; begin < ones.size(); begin += chunk) {
      const std::size_t end = std::min(begin + chunk, ones.size());
      std::vector<std::size_t> complement;
      complement.reserve(ones.size() - (end - begin));
      complement.insert(complement.end(), ones.begin(), ones.begin() + begin);
      complement.insert(complement.end(), ones.begin() + end, ones.end());
      if (mismatches(golden, revised, map, build(complement))) {
        ones = std::move(complement);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    if (chunk == 1) break;
    granularity = std::min(ones.size(), granularity * 2);
  }
  if (ones.size() == 1 &&
      mismatches(golden, revised, map, build({}))) {
    ones.clear();  // even the all-zero stimulus exposes the fault
  }
  cex.inputs = build(ones);

  // The mismatch may have moved to an earlier cycle/output under the smaller
  // stimulus; refresh the report and re-truncate.
  replay(golden, revised, cex);
  if (cex.cycle >= 0) cex.inputs.resize(cex.cycle + 1);
}

}  // namespace tp::equiv
