// Small incremental CDCL SAT solver used by the SAT-sweeping engine.
//
// Feature set deliberately chosen for the equivalence-checking workload —
// many small satisfiability queries over one growing CNF:
//   - two-watched-literal propagation,
//   - first-UIP conflict analysis with clause learning,
//   - VSIDS branching with phase saving,
//   - geometric restarts,
//   - solving under assumptions (the sweeping engine activates per-query
//     miter constraints through assumption literals, so the clause database
//     is shared across thousands of queries),
//   - a per-call conflict budget so one pathologically hard query degrades
//     to "unknown" instead of stalling the whole check.
//
// Literal encoding follows the usual convention: variable v has the positive
// literal 2v and the negative literal 2v+1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace tp::equiv {

enum class SatResult { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  /// Creates a fresh variable and returns its index.
  int new_var();
  [[nodiscard]] int num_vars() const { return static_cast<int>(assigns_.size()); }

  [[nodiscard]] static int pos_lit(int var) { return var * 2; }
  [[nodiscard]] static int neg_lit(int var) { return var * 2 + 1; }
  [[nodiscard]] static int negate(int lit) { return lit ^ 1; }

  /// Adds a clause (level-0 simplification applied). Returns false when the
  /// formula is already unsatisfiable.
  bool add_clause(std::vector<int> lits);

  /// Solves the current formula under the given assumption literals.
  SatResult solve(std::span<const int> assumptions = {});

  /// Value of a variable in the model of the last kSat answer.
  [[nodiscard]] bool model_value(int var) const { return model_[var] == 1; }

  /// Conflict budget per solve() call; 0 disables the limit.
  void set_conflict_limit(std::int64_t limit) { conflict_limit_ = limit; }

  // Cumulative statistics (exposed in SecResult::stats).
  std::int64_t num_solve_calls = 0;
  std::int64_t num_conflicts = 0;
  std::int64_t num_propagations = 0;

 private:
  struct Watcher {
    int clause = 0;
  };

  [[nodiscard]] int value_of(int lit) const {  // +1 true, 0 false, -1 unassigned
    const signed char a = assigns_[lit >> 1];
    return a < 0 ? -1 : (a ^ (lit & 1));
  }
  [[nodiscard]] int decision_level() const {
    return static_cast<int>(trail_lim_.size());
  }
  void new_decision_level() {
    trail_lim_.push_back(static_cast<int>(trail_.size()));
  }
  void enqueue(int lit, int reason);
  int propagate();  // returns conflicting clause index or -1
  void analyze(int confl, std::vector<int>& learnt, int& bt_level);
  void backtrack(int level);
  int pick_branch_var();
  void bump(int var);
  void decay() { var_inc_ /= 0.95; }
  void heap_insert(int var);
  void heap_percolate_up(int pos);
  void heap_percolate_down(int pos);
  int heap_pop();

  bool ok_ = true;  // false once the formula is unsat at level 0
  std::vector<std::vector<int>> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by literal
  std::vector<signed char> assigns_;           // per var: -1 / 0 / 1
  std::vector<int> level_;                     // per var
  std::vector<int> reason_;                    // per var: clause index or -1
  std::vector<int> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  std::vector<int> heap_;          // max-heap of vars by activity
  std::vector<int> heap_index_;    // per var: position in heap_ or -1
  std::vector<signed char> polarity_;  // saved phase per var
  std::vector<signed char> seen_;      // scratch for analyze()
  std::vector<signed char> model_;
  std::int64_t conflict_limit_ = 0;
};

}  // namespace tp::equiv
