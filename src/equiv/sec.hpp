// Phase-aware sequential equivalence checking (SEC).
//
// check_sequential_equivalence() proves that a converted netlist (3-phase,
// master-slave, or pulsed-latch) produces the same primary-output stream as
// the FF golden model for *every* stimulus — replacing the paper's sampled
// stream comparison with a proof. The pipeline:
//
//  1. Phase-aware register mapping. Each netlist is compiled into a one-cycle
//     transition system over an And-Inverter Graph by symbolically executing
//     the simulator's event schedule (one event per distinct phase-edge time,
//     parked at t = Tc-1 between cycles — see src/sim/simulator.hpp). Latch
//     pairs need no special casing: a p1/p3 latch and its inserted p2 partner
//     (or a master-slave pair) collapse into one abstract state function
//     because the intermediate latch's settle value is a combinational
//     function of the cycle's register state. Primary outputs are captured at
//     the style's snapshot event, which is exactly the alignment that makes
//     all four DesignStyles comparable against the FF model.
//  2. Both transition systems share one structurally hashed AIG, so identical
//     cones across the two designs collapse into the same nodes up front.
//  3. Candidate-equivalent node pairs are grouped by 64-bit parallel random
//     simulation from the reset state, filtered against the reset frame, and
//     then proven by 1-step induction with speculative reduction (van
//     Eijk-style signal correspondence): candidate members are substituted by
//     their class representative while unrolling the second time frame, and
//     each substitution leaves a proof obligation that is discharged
//     structurally or by the built-in CDCL solver (sat.hpp). Refuted
//     candidates are split by re-simulating the SAT witness and the round
//     repeats to a fixpoint.
//  4. Output equality is checked under the proven invariants; if that is
//     inconclusive, bounded model checking from reset searches for a real
//     divergence. Any falsification is replayed through tp::Simulator and
//     ddmin-minimized (cex.hpp) before being reported.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "src/equiv/aig.hpp"
#include "src/equiv/cex.hpp"
#include "src/netlist/netlist.hpp"

namespace tp::equiv {

struct SecOptions {
  /// Random-simulation frames used to group equivalence candidates (each
  /// frame carries 64 independent traces).
  int sim_frames = 48;
  /// Maximum speculative-reduction refinement rounds before giving up.
  int max_rounds = 16;
  /// Bounded-model-checking depth used for falsification when induction
  /// leaves the output check inconclusive.
  int bmc_frames = 24;
  /// Per-query conflict budget of the SAT solver (0 = unlimited).
  std::int64_t sat_conflict_limit = 200'000;
  /// ddmin-shrink counterexamples before reporting them.
  bool minimize_cex = true;
  /// Seed for the candidate-grouping simulation.
  std::uint64_t seed = 0xC0FFEE;
};

enum class SecStatus {
  kProven,     // output streams equal for every stimulus
  kFalsified,  // concrete, simulator-confirmed counterexample found
  kUnknown,    // proof inconclusive within the configured budgets
};

std::string_view status_name(SecStatus status);

struct SecStats {
  std::size_t aig_nodes = 0;        // final AIG size (both designs + frames)
  std::size_t golden_state_bits = 0;
  std::size_t revised_state_bits = 0;
  std::size_t candidate_pairs = 0;   // after base-case filtering
  std::size_t proven_structural = 0; // obligations discharged by hashing
  std::int64_t sat_calls = 0;
  std::int64_t sat_conflicts = 0;
  int rounds = 0;       // induction rounds to fixpoint
  int bmc_depth = 0;    // frames actually unrolled during falsification
};

struct SecResult {
  SecStatus status = SecStatus::kUnknown;
  /// Filled when status == kFalsified (simulator-confirmed and, unless
  /// disabled, minimized).
  Counterexample cex;
  SecStats stats;
  /// Human-readable summary; for kUnknown, the reason.
  std::string detail;

  explicit operator bool() const { return status == SecStatus::kProven; }
};

/// Proves or refutes output-stream equality of `revised` against `golden`.
/// Data inputs are matched by name (by position when names differ); outputs
/// are matched positionally and must agree in count. Never throws: structural
/// problems (e.g. a genuine combinational cycle) surface as kUnknown.
SecResult check_sequential_equivalence(const Netlist& golden,
                                       const Netlist& revised,
                                       const SecOptions& options = {});

// --- one-cycle symbolic model (exposed for tests and benches) --------------

/// A netlist's transition system for one full clock cycle, compiled into a
/// shared AIG. State is the register outputs plus the internal enable
/// latches of stateful clock gates, both in cell-id order.
struct Machine {
  std::vector<CellId> regs;
  std::vector<CellId> icgs;
  /// AIG input literal carrying each state bit at the cycle boundary
  /// (registers first, then ICGs; aligned with `next_state`).
  std::vector<Lit> state_in;
  /// Primary outputs at the style's snapshot event, in outputs() order.
  std::vector<Lit> po;
  /// State at the end of the cycle, aligned with `state_in`.
  std::vector<Lit> next_state;
};

/// Symbolically executes one clock cycle of `netlist` into `aig`. `pi_prev`
/// and `pi_now` are the data primary-input values of the previous and the
/// current cycle in data_inputs() order — the simulator changes PIs at t = 0
/// *after* registers sample, so the first event still sees last cycle's
/// values. Throws tp::Error on genuine combinational cycles.
Machine build_machine(Aig& aig, const Netlist& netlist,
                      std::span<const Lit> pi_prev,
                      std::span<const Lit> pi_now);

/// Concrete machine state right after Simulator::reset(), aligned with
/// Machine::state_in.
std::vector<std::uint8_t> reset_state(const Netlist& netlist,
                                      const Machine& machine);

}  // namespace tp::equiv
