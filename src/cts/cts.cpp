#include "src/cts/cts.hpp"

#include <algorithm>
#include <cmath>
#include <future>

#include "src/util/executor.hpp"

namespace tp {
namespace {

struct Point {
  double x, y;
};

std::uint64_t morton(double x, double y, double die) {
  const auto qx = static_cast<std::uint32_t>(
      std::clamp(x / std::max(die, 1e-9), 0.0, 1.0) * 0xFFFF);
  const auto qy = static_cast<std::uint32_t>(
      std::clamp(y / std::max(die, 1e-9), 0.0, 1.0) * 0xFFFF);
  std::uint64_t key = 0;
  for (int b = 0; b < 16; ++b) {
    key |= (static_cast<std::uint64_t>((qx >> b) & 1) << (2 * b)) |
           (static_cast<std::uint64_t>((qy >> b) & 1) << (2 * b + 1));
  }
  return key;
}

double cluster_hpwl(const std::vector<Point>& points, std::size_t begin,
                    std::size_t end) {
  double x0 = 1e30, y0 = 1e30, x1 = -1e30, y1 = -1e30;
  for (std::size_t i = begin; i < end; ++i) {
    x0 = std::min(x0, points[i].x);
    y0 = std::min(y0, points[i].y);
    x1 = std::max(x1, points[i].x);
    y1 = std::max(y1, points[i].y);
  }
  return (x1 - x0) + (y1 - y0);
}

/// Builds the buffered tree of one clock net: a pure function of the net's
/// sink positions, so the per-net builds can run as parallel tasks.
ClockNetTree build_tree(const Netlist& netlist, const Placement& placement,
                        NetId net_id, double die, int max_fanout) {
  const Net& net = netlist.net(net_id);
  // Sinks: every fanout pin (register clock pins, downstream ICG/buffer
  // clock pins).
  std::vector<Point> sinks;
  for (const PinRef& ref : net.fanouts) {
    const auto& [x, y] = placement.pos[ref.cell.value()];
    sinks.push_back({x, y});
  }
  ClockNetTree tree;
  tree.net = net_id;
  tree.sinks = static_cast<int>(sinks.size());
  // Recursive bottom-up clustering in Morton order.
  std::vector<Point> level = std::move(sinks);
  while (static_cast<int>(level.size()) > max_fanout) {
    std::sort(level.begin(), level.end(), [&](const Point& a,
                                              const Point& b) {
      return morton(a.x, a.y, die) < morton(b.x, b.y, die);
    });
    std::vector<Point> next;
    for (std::size_t i = 0; i < level.size();
         i += static_cast<std::size_t>(max_fanout)) {
      const std::size_t end = std::min(
          level.size(), i + static_cast<std::size_t>(max_fanout));
      tree.wire_um += cluster_hpwl(level, i, end);
      double cx = 0, cy = 0;
      for (std::size_t j = i; j < end; ++j) {
        cx += level[j].x;
        cy += level[j].y;
      }
      const auto count = static_cast<double>(end - i);
      next.push_back({cx / count, cy / count});
      ++tree.buffers;
    }
    level = std::move(next);
    ++tree.levels;
  }
  // Root segment: remaining nodes wired to the net driver (or die center
  // for root phase nets driven by input pads).
  tree.wire_um += cluster_hpwl(level, 0, level.size()) +
                  die / 4.0;  // trunk from the clock entry point
  return tree;
}

}  // namespace

ClockTreeReport synthesize_clock_trees(const Netlist& netlist,
                                       const Placement& placement,
                                       const CtsOptions& options) {
  ClockTreeReport report;
  report.buffers_of_net.assign(netlist.num_nets(), 0);
  report.wire_of_net.assign(netlist.num_nets(), 0);
  const double die = std::max(placement.width_um, 1.0);

  // Nets needing a tree, in id order (nets without sinks need none).
  std::vector<NetId> clock_nets;
  for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(NetId{n});
    if (net.alive && net.is_clock && !net.fanouts.empty()) {
      clock_nets.push_back(NetId{n});
    }
  }

  // Each tree is a pure function of one net's sinks; build them into
  // indexed slots (parallel tasks with a pool, one loop without) and fold
  // the totals in net-id order, so the report is identical either way.
  std::vector<ClockNetTree> trees(clock_nets.size());
  const auto build = [&](std::size_t i) {
    trees[i] = build_tree(netlist, placement, clock_nets[i], die,
                          options.max_fanout);
  };
  if (options.executor != nullptr && clock_nets.size() > 1) {
    std::vector<std::future<void>> futures;
    futures.reserve(clock_nets.size());
    for (std::size_t i = 0; i < clock_nets.size(); ++i) {
      futures.push_back(options.executor->submit([&build, i] { build(i); }));
    }
    for (auto& future : futures) {
      options.executor->wait(std::move(future));
    }
  } else {
    for (std::size_t i = 0; i < clock_nets.size(); ++i) build(i);
  }

  for (const ClockNetTree& tree : trees) {
    report.total_buffers += tree.buffers;
    report.total_wire_um += tree.wire_um;
    report.buffers_of_net[tree.net.value()] = tree.buffers;
    report.wire_of_net[tree.net.value()] = tree.wire_um;
    report.nets.push_back(tree);
  }
  return report;
}

}  // namespace tp
