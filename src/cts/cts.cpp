#include "src/cts/cts.hpp"

#include <algorithm>
#include <cmath>

namespace tp {
namespace {

struct Point {
  double x, y;
};

std::uint64_t morton(double x, double y, double die) {
  const auto qx = static_cast<std::uint32_t>(
      std::clamp(x / std::max(die, 1e-9), 0.0, 1.0) * 0xFFFF);
  const auto qy = static_cast<std::uint32_t>(
      std::clamp(y / std::max(die, 1e-9), 0.0, 1.0) * 0xFFFF);
  std::uint64_t key = 0;
  for (int b = 0; b < 16; ++b) {
    key |= (static_cast<std::uint64_t>((qx >> b) & 1) << (2 * b)) |
           (static_cast<std::uint64_t>((qy >> b) & 1) << (2 * b + 1));
  }
  return key;
}

double cluster_hpwl(const std::vector<Point>& points, std::size_t begin,
                    std::size_t end) {
  double x0 = 1e30, y0 = 1e30, x1 = -1e30, y1 = -1e30;
  for (std::size_t i = begin; i < end; ++i) {
    x0 = std::min(x0, points[i].x);
    y0 = std::min(y0, points[i].y);
    x1 = std::max(x1, points[i].x);
    y1 = std::max(y1, points[i].y);
  }
  return (x1 - x0) + (y1 - y0);
}

}  // namespace

ClockTreeReport synthesize_clock_trees(const Netlist& netlist,
                                       const Placement& placement,
                                       const CtsOptions& options) {
  ClockTreeReport report;
  report.buffers_of_net.assign(netlist.num_nets(), 0);
  report.wire_of_net.assign(netlist.num_nets(), 0);
  const double die = std::max(placement.width_um, 1.0);

  for (std::uint32_t n = 0; n < netlist.num_nets(); ++n) {
    const Net& net = netlist.net(NetId{n});
    if (!net.alive || !net.is_clock) continue;
    // Sinks: every fanout pin (register clock pins, downstream ICG/buffer
    // clock pins). Nets without sinks need no tree.
    std::vector<Point> sinks;
    for (const PinRef& ref : net.fanouts) {
      const auto& [x, y] = placement.pos[ref.cell.value()];
      sinks.push_back({x, y});
    }
    if (sinks.empty()) continue;

    ClockNetTree tree;
    tree.net = NetId{n};
    tree.sinks = static_cast<int>(sinks.size());
    // Recursive bottom-up clustering in Morton order.
    std::vector<Point> level = std::move(sinks);
    while (static_cast<int>(level.size()) > options.max_fanout) {
      std::sort(level.begin(), level.end(), [&](const Point& a,
                                                const Point& b) {
        return morton(a.x, a.y, die) < morton(b.x, b.y, die);
      });
      std::vector<Point> next;
      for (std::size_t i = 0; i < level.size();
           i += static_cast<std::size_t>(options.max_fanout)) {
        const std::size_t end = std::min(
            level.size(), i + static_cast<std::size_t>(options.max_fanout));
        tree.wire_um += cluster_hpwl(level, i, end);
        double cx = 0, cy = 0;
        for (std::size_t j = i; j < end; ++j) {
          cx += level[j].x;
          cy += level[j].y;
        }
        const auto count = static_cast<double>(end - i);
        next.push_back({cx / count, cy / count});
        ++tree.buffers;
      }
      level = std::move(next);
      ++tree.levels;
    }
    // Root segment: remaining nodes wired to the net driver (or die center
    // for root phase nets driven by input pads).
    tree.wire_um += cluster_hpwl(level, 0, level.size()) +
                    die / 4.0;  // trunk from the clock entry point

    report.total_buffers += tree.buffers;
    report.total_wire_um += tree.wire_um;
    report.buffers_of_net[n] = tree.buffers;
    report.wire_of_net[n] = tree.wire_um;
    report.nets.push_back(tree);
  }
  return report;
}

}  // namespace tp
