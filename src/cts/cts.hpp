// Clock-tree synthesis model.
//
// For every clock net (phase roots and gated-clock nets) a buffered tree is
// synthesized over its sink pins: sinks are clustered geometrically (Morton
// order over the placement) into groups of at most `max_fanout`, each group
// receives a buffer at its centroid with wire length equal to the cluster's
// half-perimeter, and the buffers are clustered recursively up to the root.
//
// The report feeds the power model: a 3-phase design routes three root
// trees, which is exactly why the paper observes roughly 3x clock-tree
// synthesis run time and why the per-tree sink capacitance (latch clock
// pins are smaller than FF clock pins) drives the clock-power savings.
// Gated subtrees (ICG outputs) toggle at their own measured rate, so
// clock-gating savings appear naturally.
#pragma once

#include <vector>

#include "src/place/placer.hpp"

namespace tp::util {
class Executor;
}  // namespace tp::util

namespace tp {

struct CtsOptions {
  int max_fanout = 20;
  /// Build the per-clock-net trees as parallel pool tasks — one task per
  /// clock net (a 3-phase design has at least three root trees, the
  /// paper's ~3x CTS cost), results written to indexed slots and
  /// aggregated in net-id order, so the report is bit-identical to the
  /// serial build at any thread count. Not owned.
  util::Executor* executor = nullptr;
};

struct ClockNetTree {
  NetId net;
  int sinks = 0;
  int buffers = 0;
  int levels = 0;
  double wire_um = 0;
};

struct ClockTreeReport {
  std::vector<ClockNetTree> nets;
  int total_buffers = 0;
  double total_wire_um = 0;

  /// Per-net lookups (indexed by net id; zero for non-clock nets).
  std::vector<int> buffers_of_net;
  std::vector<double> wire_of_net;

  [[nodiscard]] double buffer_area_um2(const CellLibrary& library) const {
    return total_buffers * library.params(CellKind::kClkBuf).area_um2;
  }
};

ClockTreeReport synthesize_clock_trees(const Netlist& netlist,
                                       const Placement& placement,
                                       const CtsOptions& options = {});

}  // namespace tp
