#!/usr/bin/env bash
# CI smoke test for the conversion service daemon.
#
# Starts serve_cli on a job-file drop directory with a persistent cache,
# pushes 100 unique jobs, waits for every result, pushes 100 repeats of
# the same computations (fresh ids), and asserts:
#   - every job gets a result file and every well-formed job reports ok
#   - the repeat half is served from the cache (>= 50% hit rate required,
#     in practice 100%: the first half has fully settled)
#   - a shutdown job terminates the daemon with exit status 0
#
# Usage: scripts/serve_smoke.sh [path-to-serve_cli]
set -euo pipefail

SERVE_CLI="${1:-build/examples/serve_cli}"
WORK="$(mktemp -d)"
JOBS="$WORK/jobs"
CACHE="$WORK/cache"
mkdir -p "$JOBS" "$CACHE"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

"$SERVE_CLI" --drop-dir "$JOBS" --cache-dir "$CACHE" --poll-ms 10 &
DAEMON_PID=$!

BENCHMARKS=(s1196 s1238 s1423 s1488)
BACKENDS=(ff ms 3p pl 2p det)
TYPES=(convert power_eval)

# drop STEM LINE — atomic job-file publish (write elsewhere, rename in).
drop() {
  printf '%s\n' "$2" > "$JOBS/$1.tmp"
  mv "$JOBS/$1.tmp" "$JOBS/$1.job"
}

# job INDEX UNIQUE — one request line; UNIQUE picks the computation. The
# backend rotation covers every registered token, so the smoke exercises
# the non-default conversions (pl/2p/det) through the daemon too.
job() {
  local u="$2"
  local bench="${BENCHMARKS[$((u % ${#BENCHMARKS[@]}))]}"
  local backend="${BACKENDS[$(((u / ${#BENCHMARKS[@]}) % ${#BACKENDS[@]}))]}"
  local type="${TYPES[$((u % ${#TYPES[@]}))]}"
  printf '{"id":"j%s","type":"%s","benchmark":"%s","backend":"%s","preset":"fast","cycles":12,"seed":%s}' \
    "$1" "$type" "$bench" "$backend" "$((100 + u))"
}

# wait_results COUNT — until that many .result files exist.
wait_results() {
  for _ in $(seq 1 600); do
    local have
    have=$(ls "$JOBS" 2>/dev/null | grep -c '\.result$' || true)
    [ "$have" -ge "$1" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || { echo "FAIL: daemon died"; exit 1; }
    sleep 0.1
  done
  echo "FAIL: timed out waiting for $1 results"; exit 1
}

UNIQUE=100
echo "pushing $UNIQUE unique jobs..."
for i in $(seq 0 $((UNIQUE - 1))); do
  drop "u$i" "$(job "u$i" "$i")"
done
wait_results "$UNIQUE"

echo "pushing $UNIQUE repeat jobs..."
for i in $(seq 0 $((UNIQUE - 1))); do
  drop "r$i" "$(job "r$i" "$i")"
done
wait_results $((2 * UNIQUE))

FAILED=$(grep -l '"ok":false' "$JOBS"/*.result | wc -l || true)
if [ "$FAILED" -ne 0 ]; then
  echo "FAIL: $FAILED job(s) reported ok:false"
  grep -l '"ok":false' "$JOBS"/*.result | head
  exit 1
fi

drop status '{"id":"status","type":"status"}'
wait_results $((2 * UNIQUE + 1))
STATUS=$(cat "$JOBS/status.result")
echo "status: $STATUS"
HITS=$(sed -n 's/.*"cache":{"memory_hits":\([0-9]*\),"disk_hits":\([0-9]*\).*/\1 \2/p' <<< "$STATUS")
TOTAL_HITS=$(( $(cut -d' ' -f1 <<< "$HITS") + $(cut -d' ' -f2 <<< "$HITS") ))
if [ "$TOTAL_HITS" -lt $((UNIQUE / 2)) ]; then
  echo "FAIL: only $TOTAL_HITS cache hits on $UNIQUE repeated jobs (<50%)"
  exit 1
fi
echo "cache hits on repeat half: $TOTAL_HITS/$UNIQUE"

# The status response advertises every registered backend token.
for backend in "${BACKENDS[@]}"; do
  if ! grep -q "\"backends\":\[.*\"$backend\"" <<< "$STATUS"; then
    echo "FAIL: status backends list is missing '$backend'"
    exit 1
  fi
done

drop quit '{"id":"quit","type":"shutdown"}'
RC=0
wait "$DAEMON_PID" || RC=$?
if [ "$RC" -ne 0 ]; then
  echo "FAIL: daemon exited $RC after shutdown job (want 0)"
  exit 1
fi
DAEMON_PID=""
trap 'rm -rf "$WORK"' EXIT

[ -n "$(ls -A "$CACHE")" ] || { echo "FAIL: cache dir empty"; exit 1; }
echo "serve smoke OK: $((2 * UNIQUE)) jobs, $TOTAL_HITS cache hits, clean shutdown"
