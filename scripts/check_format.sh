#!/usr/bin/env bash
# Verify formatting and lint config without rewriting anything.
#
#   scripts/check_format.sh          # check files changed vs the merge base
#   scripts/check_format.sh --all    # check every tracked C++ file
#
# Exits non-zero when clang-format would change a file. Tools are optional:
# when clang-format / clang-tidy are not installed (e.g. the minimal build
# container) the corresponding step is skipped with a note so the script
# stays usable as a CI gate on runners that do have them.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-changed}"
if [[ "$mode" == "--all" ]]; then
  mapfile -t files < <(git ls-files '*.cpp' '*.hpp')
else
  base="$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse 'HEAD~1' 2>/dev/null || true)"
  if [[ -n "$base" ]]; then
    mapfile -t files < <(git diff --name-only --diff-filter=ACMR "$base" -- '*.cpp' '*.hpp')
  else
    mapfile -t files < <(git ls-files '*.cpp' '*.hpp')
  fi
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_format: no C++ files to check"
  exit 0
fi

status=0

if command -v clang-format >/dev/null 2>&1; then
  bad=()
  for f in "${files[@]}"; do
    [[ -f "$f" ]] || continue
    if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
      bad+=("$f")
    fi
  done
  if [[ ${#bad[@]} -gt 0 ]]; then
    echo "check_format: clang-format would reformat:"
    printf '  %s\n' "${bad[@]}"
    status=1
  else
    echo "check_format: clang-format clean (${#files[@]} file(s))"
  fi
else
  echo "check_format: clang-format not installed, skipping format check"
fi

# Config sanity: both dotfiles must parse even on runners without the tools.
for cfg in .clang-format .clang-tidy; do
  [[ -f "$cfg" ]] || { echo "check_format: missing $cfg"; status=1; }
done

exit $status
