// matrix_cli — parallel benchmark x style sweeps over the flow engine.
//
// Describe a RunPlan on the command line (which circuits, which design
// styles, shared flow options) and execute it on the work-stealing
// executor, printing one row per task plus throughput totals:
//
//   $ ./examples/matrix_cli                          # all benchmarks, ff/ms/3p
//   $ ./examples/matrix_cli --circuit s5378 --circuit s9234 --backend 3p
//   $ ./examples/matrix_cli --threads 8 --cycles 96 --check-rules
//   $ ./examples/matrix_cli --preset fast --json
//
// --style is a deprecated alias of --backend (see docs/backends.md).
//
// Results are bit-identical for any --threads value (see
// docs/parallelism.md for the determinism contract).
//
// A failing task (unknown benchmark, flow error) does not abort the
// sweep: its error is captured per-cell (MatrixResult::error), printed as
// a row, and turns the exit status nonzero. SIGINT/SIGTERM cancel the
// remaining queued tasks, drain the ones already running, print what
// completed, and exit 130.
//
// Exit status: 0 on success, 1 when any task fails or fails its opt-in
// SEC/lint checks, 2 on usage errors, 130 on signal cancellation.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "src/flow/matrix.hpp"
#include "src/flow/serialize.hpp"
#include "src/util/argparse.hpp"
#include "src/util/executor.hpp"
#include "src/util/json.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> circuits_arg, backends_arg, styles_arg;
  std::string workload_text = "paper";
  std::string preset = "paper";
  std::size_t cycles = 96, threads = 0, seed = 7, lanes = 1;
  bool check_sec = false, check_rules = false, json = false;

  util::ArgParser parser(
      "matrix_cli", "run a benchmarks x styles matrix of conversion flows "
                    "in parallel and report per-task metrics");
  parser.add_list("--circuit", &circuits_arg,
                  "benchmark to include (repeatable; default all)", "NAME");
  parser.add_list("--backend", &backends_arg,
                  "conversion backend to include: ff|ms|3p|pl|2p|det "
                  "(repeatable; default ff ms 3p)",
                  "B");
  parser.add_list("--style", &styles_arg,
                  "deprecated alias of --backend", "B");
  parser.add_value("--workload", &workload_text,
                   "paper|dhrystone|coremark (default paper)", "W");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 96)");
  parser.add_value("--seed", &seed,
                   "base stimulus seed; tasks derive their own (default 7)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes per task, 1-64; lanes >= 2 split the "
                   "cycle budget across a bit-parallel wide simulation "
                   "(default 1)");
  parser.add_value("--threads", &threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_value("--preset", &preset,
                   "FlowOptions preset: paper|fast|no-gating (default "
                   "paper)",
                   "P");
  parser.add_flag("--check", &check_sec,
                  "SEC checkpoint after each transform stage");
  parser.add_flag("--check-rules", &check_rules,
                  "rule-check after each transform stage");
  parser.add_flag("--json", &json, "emit one JSON object per task");
  parser.parse_or_exit(argc, argv);

  RunPlan plan;
  plan.benchmarks = circuits_arg;
  plan.cycles = cycles;
  plan.stimulus_seed = seed;
  plan.lanes = lanes;
  plan.cancel = &g_stop;
  if (lanes < 1 || lanes > kMaxSimLanes) {
    std::fprintf(stderr, "--lanes must be in [1, 64]\n%s",
                 parser.usage().c_str());
    return 2;
  }
  // --backend wins over the deprecated --style alias.
  const std::vector<std::string>& tokens =
      !backends_arg.empty() ? backends_arg : styles_arg;
  if (!tokens.empty()) {
    plan.styles.clear();
    for (const std::string& text : tokens) {
      DesignStyle style;
      if (!style_from_name(text, &style)) {
        std::fprintf(stderr, "unknown --backend '%s' (valid: %s)\n%s",
                     text.c_str(), backend_token_list().c_str(),
                     parser.usage().c_str());
        return 2;
      }
      plan.styles.push_back(style);
    }
  }
  if (!options_from_preset(preset, &plan.options)) {
    std::fprintf(stderr, "unknown --preset '%s'\n%s", preset.c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (!workload_from_name(workload_text, &plan.workload)) {
    std::fprintf(stderr, "unknown --workload '%s'\n%s",
                 workload_text.c_str(), parser.usage().c_str());
    return 2;
  }
  plan.options.check_equivalence = check_sec;
  plan.options.check_rules = check_rules;

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    util::Executor executor(threads);
    Stopwatch wall;
    const std::vector<MatrixResult> results = run_matrix(plan, executor);
    const double wall_s = wall.seconds();

    int failures = 0;
    int errors = 0;
    if (!json) {
      std::printf("%-8s %-5s | %7s %10s %8s %10s | %7s | %s\n", "design",
                  "style", "regs", "area", "power", "hash", "time", "checks");
    }
    for (const MatrixResult& r : results) {
      if (!r.ok()) {
        ++errors;
        if (json) {
          util::JsonWriter w;
          w.begin_object();
          w.key("design").value(r.task.benchmark);
          w.key("style").value(style_token(r.task.style));
          w.key("ok").value(false);
          w.key("error").value(r.error);
          w.end_object();
          std::printf("%s\n", w.take().c_str());
        } else {
          std::printf("%-8s %-5s | ERROR %s\n", r.task.benchmark.c_str(),
                      std::string(style_name(r.task.style)).c_str(),
                      r.error.c_str());
        }
        std::fflush(stdout);
        continue;
      }
      const char* verdict = "-";
      if (check_sec || check_rules) {
        const bool ok = (!check_sec || r.result.equiv.all_proven()) &&
                        (!check_rules || r.result.lint.all_clean());
        verdict = ok ? "ok" : "FAIL";
        if (!ok) ++failures;
      }
      if (json) {
        std::printf(
            "{\"design\":\"%s\",\"style\":\"%s\",\"seed\":%llu,"
            "\"registers\":%d,\"area_um2\":%.1f,\"power_mw\":%.4f,"
            "\"stream_hash\":\"%016llx\",\"seconds\":%.3f,"
            "\"checks\":\"%s\"}\n",
            r.task.benchmark.c_str(),
            std::string(style_name(r.task.style)).c_str(),
            static_cast<unsigned long long>(r.task.seed),
            r.result.registers, r.result.area_um2,
            r.result.power.total_mw(),
            static_cast<unsigned long long>(stream_hash(r.result.outputs)),
            r.seconds, verdict);
      } else {
        std::printf("%-8s %-5s | %7d %10.0f %8.3f %010llx | %6.2fs | %s\n",
                    r.task.benchmark.c_str(),
                    std::string(style_name(r.task.style)).c_str(),
                    r.result.registers, r.result.area_um2,
                    r.result.power.total_mw(),
                    static_cast<unsigned long long>(
                        stream_hash(r.result.outputs) & 0xffffffffffULL),
                    r.seconds, verdict);
      }
      std::fflush(stdout);
    }
    const bool canceled = g_stop.load(std::memory_order_relaxed);
    if (!json) {
      std::printf("\n%zu tasks on %zu thread(s): %.2f s wall, %.2f "
                  "tasks/s\n",
                  results.size(), executor.thread_count(), wall_s,
                  wall_s > 0 ? results.size() / wall_s : 0.0);
      if (errors > 0) std::printf("%d task(s) ERRORED\n", errors);
      if (failures > 0) {
        std::printf("%d task(s) FAILED their checks\n", failures);
      }
      if (canceled) std::printf("sweep canceled by signal\n");
    }
    if (canceled) return 130;
    return failures == 0 && errors == 0 ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
