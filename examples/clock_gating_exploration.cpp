// Clock-gating exploration: sweep the DDCG toggle threshold and maximum CG
// fanout on a crypto core and report the power impact of each setting —
// the tuning questions Sec. IV-D leaves to the designer.
//
//   $ ./examples/clock_gating_exploration [benchmark]
#include <cstdio>
#include <string>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

FlowResult run_with(const circuits::Benchmark& bench,
                    const Stimulus& stimulus, const DdcgOptions& ddcg,
                    bool ddcg_enabled) {
  FlowOptions options;
  options.ddcg = ddcg_enabled;
  options.ddcg_options = ddcg;
  return run_flow(bench, DesignStyle::kThreePhase, stimulus, options);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "DES3";
  const circuits::Benchmark bench = circuits::make_benchmark(name);
  const Stimulus stimulus = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, 192, 7);

  std::printf("%s: DDCG design-space sweep (3-phase design)\n\n",
              name.c_str());
  std::printf("%-28s %8s %8s %10s\n", "configuration", "gated", "groups",
              "total mW");

  const FlowResult off = run_with(bench, stimulus, {}, false);
  std::printf("%-28s %8d %8d %10.3f\n", "DDCG off", 0, 0,
              off.power.total_mw());

  for (const double threshold : {0.002, 0.01, 0.05, 0.2}) {
    DdcgOptions ddcg;
    ddcg.toggle_threshold = threshold;
    const FlowResult r = run_with(bench, stimulus, ddcg, true);
    std::printf("threshold %-17.3f %8d %8d %10.3f\n", threshold,
                r.ddcg.latches_gated, r.ddcg.groups, r.power.total_mw());
  }
  for (const int fanout : {4, 16, 32, 64}) {
    DdcgOptions ddcg;
    ddcg.max_fanout = fanout;
    const FlowResult r = run_with(bench, stimulus, ddcg, true);
    std::printf("max fanout %-16d %8d %8d %10.3f\n", fanout,
                r.ddcg.latches_gated, r.ddcg.groups, r.power.total_mw());
  }
  std::printf("\n(The paper uses threshold 1%% of the clock and fanout 32.)\n");
  return 0;
}
