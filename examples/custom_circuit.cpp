// Custom circuit: build your own design with the structural Builder API,
// compare the exact ILP against the greedy heuristic, and search the
// minimum cycle time of each style.
//
//   $ ./examples/custom_circuit
#include <cstdio>

#include "src/circuits/builder.hpp"
#include "src/netlist/traverse.hpp"
#include "src/phase/assignment.hpp"
#include "src/timing/incremental.hpp"
#include "src/timing/sta.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"

using namespace tp;
using namespace tp::circuits;

namespace {

/// A small accelerator-style block: a 16-bit MAC-ish pipeline plus a
/// control FSM and an enable-gated coefficient bank.
Netlist build_accelerator() {
  Netlist nl("accel");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(2500, nl.cell(clk).out);
  Rng rng(42);
  Builder b(nl, nl.cell(clk).out, rng);

  const Bus x = b.inputs("x", 16);
  const Bus w = b.inputs("w", 16);
  const NetId load = nl.cell(nl.add_input("load")).out;

  const Bus coeff = b.ff_bank_en("coeff", w, load);
  const Bus prod = b.bitwise(CellKind::kAnd2, "prod", x, coeff);
  const Bus stage1 = b.ff_bank("s1", prod);
  const Bus acc_in = b.adder("acc", stage1, Builder::rotate(stage1, 1));
  const Bus stage2 = b.ff_bank("s2", acc_in);
  b.outputs("y", stage2);
  nl.validate();
  return nl;
}

}  // namespace

int main() {
  Netlist ff = build_accelerator();
  infer_clock_gating(ff);
  std::printf("accelerator: %zu FFs, %zu cells\n", ff.registers().size(),
              ff.live_cells().size());

  // Exact ILP vs greedy heuristic (the ablation of Sec. IV-A's solver).
  const RegisterGraph graph = build_register_graph(ff);
  const PhaseAssignment exact = assign_phases(graph);
  const PhaseAssignment greedy = assign_phases_greedy(graph);
  std::printf("inserted p2 latches: exact ILP %d (optimal=%s), greedy %d\n",
              exact.num_inserted(), exact.optimal ? "yes" : "no",
              greedy.num_inserted());

  // Minimum cycle time of each style (constraint C3 headroom).
  const CellLibrary& lib = CellLibrary::nominal_28nm();
  const Netlist ms = to_master_slave(ff);
  ThreePhaseOptions options;
  options.precomputed = &exact;
  const ThreePhaseResult p3 = to_three_phase(ff, options);
  std::printf("min period: FF %lld ps, M-S %lld ps, 3-phase %lld ps\n",
              static_cast<long long>(find_min_period(ff, lib, 100, 4000).period_ps),
              static_cast<long long>(find_min_period(ms, lib, 100, 4000).period_ps),
              static_cast<long long>(
                  find_min_period(p3.netlist, lib, 100, 4000).period_ps));
  return 0;
}
