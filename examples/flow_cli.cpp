// flow_cli — command-line front end to the conversion flow.
//
// Convert a built-in benchmark (or a structural-Verilog netlist using the
// TP_* cell library) to any of the supported design styles, report
// registers / area / timing / power, and optionally export the result:
//
//   $ ./examples/flow_cli --circuit Plasma --backend 3p --out plasma_3p.v
//   $ ./examples/flow_cli --in mydesign.v --backend ms --stats
//   $ ./examples/flow_cli --circuit s5378 --backend 3p --no-retime --no-ddcg
//   $ ./examples/flow_cli --circuit s9234 --preset no-gating
//   $ ./examples/flow_cli --list
//
// --style is a deprecated alias of --backend (see docs/backends.md).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "src/circuits/workload.hpp"
#include "src/flow/matrix.hpp"  // lane_seed; pulls in flow.hpp
#include "src/flow/serialize.hpp"
#include "src/netlist/stats.hpp"
#include "src/netlist/verilog.hpp"
#include "src/timing/report.hpp"
#include "src/util/argparse.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  std::string circuit, in_file, out_file, dot_file, vcd_file;
  std::string backend_text, style_text;
  std::string workload_text = "paper";
  std::string preset = "paper";
  std::size_t cycles = 192, lanes = 1;
  bool greedy = false, no_retime = false, no_cg = false, no_m1 = false;
  bool no_m2 = false, no_ddcg = false, check = false;
  bool enabled_style = false, show_stats = false, show_profile = false;
  bool list = false;

  util::ArgParser parser(
      "flow_cli", "convert a benchmark or Verilog netlist to a design "
                  "style and report registers / area / timing / power");
  parser.add_value("--circuit", &circuit, "built-in benchmark (see --list)",
                   "NAME");
  parser.add_value("--in", &in_file,
                   "structural Verilog netlist (TP_* cells)", "FILE.v");
  parser.add_value("--backend", &backend_text,
                   "conversion backend (see --list-backends; default 3p)",
                   "B");
  parser.add_value("--style", &style_text,
                   "deprecated alias of --backend", "B");
  parser.add_value("--workload", &workload_text,
                   "paper|dhrystone|coremark (default paper)", "W");
  parser.add_value("--cycles", &cycles, "simulated cycles (default 192)");
  parser.add_value("--lanes", &lanes,
                   "stimulus lanes, 1-64; lanes >= 2 split the cycle "
                   "budget across a bit-parallel wide simulation "
                   "(default 1)");
  parser.add_value("--vcd", &vcd_file,
                   "dump a VCD of the validation simulation (first lane; "
                   "forces the scalar engine for that sim)",
                   "FILE.vcd");
  parser.add_value("--preset", &preset,
                   "FlowOptions preset: paper|fast|no-gating (default "
                   "paper)",
                   "P");
  parser.add_value("--out", &out_file, "write the converted netlist",
                   "FILE.v");
  parser.add_flag("--greedy", &greedy,
                  "use the greedy phase heuristic (not the ILP)");
  parser.add_flag("--no-retime", &no_retime, "skip modified retiming");
  parser.add_flag("--no-cg", &no_cg, "skip common-enable p2 clock gating");
  parser.add_flag("--no-m1", &no_m1, "skip the M1 gating method");
  parser.add_flag("--no-m2", &no_m2, "skip the M2 gating method");
  parser.add_flag("--no-ddcg", &no_ddcg, "skip data-driven clock gating");
  parser.add_flag("--check", &check,
                  "SEC checkpoint after each transform stage");
  parser.add_flag("--enabled-style", &enabled_style,
                  "synthesize enables as muxes (Fig. 2(a))");
  parser.add_flag("--stats", &show_stats, "print structural statistics");
  parser.add_flag("--profile", &show_profile,
                  "print the slack profile/histogram");
  parser.add_value("--dot", &dot_file,
                   "write the register graph (Graphviz)", "FILE.dot");
  parser.add_flag("--list", &list, "list built-in benchmarks and exit");
  bool list_backends = false;
  parser.add_flag("--list-backends", &list_backends,
                  "list registered conversion backends and exit");
  parser.parse_or_exit(argc, argv);

  if (list) {
    for (const auto& name : circuits::benchmark_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (list_backends) {
    for (const ConversionBackend* backend : backend_registry()) {
      std::printf("%-4s %-4s %s\n", std::string(backend->token()).c_str(),
                  std::string(backend->display_name()).c_str(),
                  std::string(backend->description()).c_str());
    }
    return 0;
  }

  FlowOptions options;
  if (preset == "paper") {
    options = FlowOptions::paper_defaults();
  } else if (preset == "fast") {
    options = FlowOptions::fast();
  } else if (preset == "no-gating") {
    options = FlowOptions::no_gating();
  } else {
    std::fprintf(stderr, "unknown --preset '%s'\n%s", preset.c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (greedy) options.assign.method = AssignMethod::kGreedy;
  if (no_retime) options.retime = false;
  if (no_cg) options.p2_common_enable_cg = false;
  if (no_m1) options.use_m1 = false;
  if (no_m2) options.use_m2 = false;
  if (no_ddcg) options.ddcg = false;
  if (check) options.check_equivalence = true;
  if (enabled_style) options.synthesis_cg.style = CgStyle::kEnabled;

  // --backend wins over the deprecated --style alias; default 3p.
  const std::string token = !backend_text.empty() ? backend_text
                            : !style_text.empty() ? style_text
                                                  : "3p";
  DesignStyle style;
  if (!style_from_name(token, &style)) {
    std::fprintf(stderr, "unknown --backend '%s' (valid: %s)\n%s",
                 token.c_str(), backend_token_list().c_str(),
                 parser.usage().c_str());
    return 2;
  }

  circuits::Workload workload = circuits::Workload::kPaperDefault;
  if (workload_text == "dhrystone") {
    workload = circuits::Workload::kDhrystone;
  } else if (workload_text == "coremark") {
    workload = circuits::Workload::kCoremark;
  } else if (workload_text != "paper") {
    std::fprintf(stderr, "unknown --workload '%s'\n%s",
                 workload_text.c_str(), parser.usage().c_str());
    return 2;
  }

  try {
    circuits::Benchmark bench{"custom", "custom", Netlist("custom"), 0, ""};
    if (!circuit.empty()) {
      bench = circuits::make_benchmark(circuit);
    } else if (!in_file.empty()) {
      std::ifstream in(in_file);
      require(in.good(), "cannot open " + in_file);
      bench.netlist = read_verilog(in);
      bench.name = bench.netlist.name();
      bench.period_ps = bench.netlist.clocks().period_ps;
      require(bench.period_ps > 0,
              "netlist carries no tp-clock directive (clock plan unknown)");
    } else {
      std::fprintf(stderr, "one of --circuit or --in is required\n%s",
                   parser.usage().c_str());
      return 2;
    }

    if (lanes < 1 || lanes > kMaxSimLanes) {
      std::fprintf(stderr, "--lanes must be in [1, 64]\n%s",
                   parser.usage().c_str());
      return 2;
    }
    std::ofstream vcd_out;
    if (!vcd_file.empty()) {
      vcd_out.open(vcd_file);
      require(vcd_out.good(), "cannot open " + vcd_file);
      options.vcd = &vcd_out;
    }
    // Same split as RunPlan::lanes: the cycle budget is divided across
    // lanes, lane 0 keeping the single-lane seed.
    const std::size_t per_lane = (cycles + lanes - 1) / lanes;
    std::vector<Stimulus> stims;
    stims.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      stims.push_back(circuits::make_stimulus(bench, workload, per_lane,
                                              lane_seed(7, l)));
    }
    const FlowResult r = run_flow(bench, style, stims, options);

    std::printf("%s -> %s\n", bench.name.c_str(),
                std::string(style_name(style)).c_str());
    std::printf("  registers        %d\n", r.registers);
    std::printf("  area             %.0f um2\n", r.area_um2);
    std::printf("  power            %.3f mW (clock %.3f, seq %.3f, comb "
                "%.3f)\n",
                r.power.total_mw(), r.power.clock_mw, r.power.seq_mw,
                r.power.comb_mw);
    std::printf("  timing           setup %s (%.0f ps), hold %s (%.0f ps)\n",
                r.timing.setup_ok ? "OK" : "FAIL",
                r.timing.worst_setup_slack_ps,
                r.timing.hold_ok ? "OK" : "FAIL",
                r.timing.worst_hold_slack_ps);
    if (options.hold_repair) {
      std::printf("  hold repair      %d buffer(s), %.3f s\n",
                  r.hold.buffers_inserted, r.times.hold_s);
    }
    std::printf("  STA split        full %.3f s, incremental %.3f s%s\n",
                r.times.sta_full_s, r.times.sta_incremental_s,
                options.incremental_timing ? "" : " (session off)");
    if (style == DesignStyle::kTwoPhase) {
      std::printf("  duplicated ICGs  %d (clkbar side)\n",
                  r.duplicated_icgs);
    }
    if (style == DesignStyle::kDetFf) {
      std::printf("  clock dividers   %d\n", r.dividers);
    }
    if (style == DesignStyle::kThreePhase) {
      std::printf("  inserted p2      %d (retimed %d, merged to %d)\n",
                  r.inserted_p2, r.retime.moved, r.retime.latches_after);
      std::printf("  clock gating     %d common-enable, %d DDCG, M2 %d/%d\n",
                  r.p2_gating.p2_latches_gated, r.ddcg.latches_gated,
                  r.m2.converted, r.m2.converted + r.m2.kept);
      std::printf("  flow run time    %.2f s (ILP %.3f s)\n",
                  r.times.total_s(), r.times.ilp_s);
    }
    if (options.check_equivalence) {
      for (const StageCheck& stage : r.equiv.stages) {
        std::printf("  SEC %-12s %s (%.2f s)%s%s\n", stage.stage.c_str(),
                    std::string(equiv::status_name(stage.result.status))
                        .c_str(),
                    stage.seconds,
                    stage.result.detail.empty() ? "" : " — ",
                    stage.result.detail.c_str());
      }
      if (const StageCheck* failed = r.equiv.first_failure()) {
        std::fprintf(stderr, "equivalence lost at stage '%s': %s\n",
                     failed->stage.c_str(), failed->result.detail.c_str());
        return 1;
      }
    }
    if (show_stats) {
      std::printf("\n%s", format_stats(compute_stats(r.netlist)).c_str());
    }
    if (show_profile) {
      std::printf("\n%s",
                  format_profile(
                      profile_timing(r.netlist, CellLibrary::nominal_28nm()),
                      10)
                      .c_str());
    }
    if (!dot_file.empty()) {
      std::ofstream dot(dot_file);
      write_register_graph_dot(r.netlist, dot);
      std::printf("  wrote            %s\n", dot_file.c_str());
    }
    if (!out_file.empty()) {
      std::ofstream out(out_file);
      write_verilog(r.netlist, out);
      std::printf("  wrote            %s\n", out_file.c_str());
    }
    if (!vcd_file.empty()) {
      std::printf("  wrote            %s\n", vcd_file.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
