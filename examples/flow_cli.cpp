// flow_cli — command-line front end to the conversion flow.
//
// Convert a built-in benchmark (or a structural-Verilog netlist using the
// TP_* cell library) to any of the supported design styles, report
// registers / area / timing / power, and optionally export the result:
//
//   $ ./examples/flow_cli --circuit Plasma --style 3p --out plasma_3p.v
//   $ ./examples/flow_cli --in mydesign.v --style ms --report
//   $ ./examples/flow_cli --circuit s5378 --style 3p --no-retime --no-ddcg
//   $ ./examples/flow_cli --list
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"
#include "src/netlist/stats.hpp"
#include "src/netlist/verilog.hpp"
#include "src/timing/report.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--circuit NAME | --in FILE.v] [options]\n"
      "  --circuit NAME     built-in benchmark (see --list)\n"
      "  --in FILE.v        structural Verilog netlist (TP_* cells)\n"
      "  --style ff|ms|3p   target design style (default 3p)\n"
      "  --workload W       paper|dhrystone|coremark (default paper)\n"
      "  --cycles N         simulated cycles (default 192)\n"
      "  --out FILE.v       write the converted netlist\n"
      "  --greedy           use the greedy phase heuristic (not the ILP)\n"
      "  --no-retime --no-cg --no-m1 --no-m2 --no-ddcg\n"
      "  --check            SEC checkpoint after each transform stage\n"
      "  --stats            print structural statistics\n"
      "  --profile          print the slack profile/histogram\n"
      "  --dot FILE.dot     write the register graph (Graphviz)\n"
      "  --enabled-style    synthesize enables as muxes (Fig. 2(a))\n"
      "  --list             list built-in benchmarks\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit, in_file, out_file, dot_file;
  bool show_stats = false, show_profile = false;
  std::string style_text = "3p";
  std::string workload_text = "paper";
  std::size_t cycles = 192;
  FlowOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--circuit") {
      circuit = value();
    } else if (arg == "--in") {
      in_file = value();
    } else if (arg == "--style") {
      style_text = value();
    } else if (arg == "--workload") {
      workload_text = value();
    } else if (arg == "--cycles") {
      cycles = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--out") {
      out_file = value();
    } else if (arg == "--greedy") {
      options.assign.method = AssignMethod::kGreedy;
    } else if (arg == "--no-retime") {
      options.retime = false;
    } else if (arg == "--no-cg") {
      options.p2_common_enable_cg = false;
    } else if (arg == "--no-m1") {
      options.use_m1 = false;
    } else if (arg == "--no-m2") {
      options.use_m2 = false;
    } else if (arg == "--no-ddcg") {
      options.ddcg = false;
    } else if (arg == "--check") {
      options.check_equivalence = true;
    } else if (arg == "--enabled-style") {
      options.synthesis_cg.style = CgStyle::kEnabled;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--profile") {
      show_profile = true;
    } else if (arg == "--dot") {
      dot_file = value();
    } else if (arg == "--list") {
      for (const auto& name : circuits::benchmark_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  DesignStyle style;
  if (style_text == "ff") {
    style = DesignStyle::kFlipFlop;
  } else if (style_text == "ms") {
    style = DesignStyle::kMasterSlave;
  } else if (style_text == "3p") {
    style = DesignStyle::kThreePhase;
  } else {
    return usage(argv[0]);
  }

  circuits::Workload workload = circuits::Workload::kPaperDefault;
  if (workload_text == "dhrystone") workload = circuits::Workload::kDhrystone;
  else if (workload_text == "coremark") workload = circuits::Workload::kCoremark;
  else if (workload_text != "paper") return usage(argv[0]);

  try {
    circuits::Benchmark bench{"custom", "custom", Netlist("custom"), 0, ""};
    if (!circuit.empty()) {
      bench = circuits::make_benchmark(circuit);
    } else if (!in_file.empty()) {
      std::ifstream in(in_file);
      require(in.good(), "cannot open " + in_file);
      bench.netlist = read_verilog(in);
      bench.name = bench.netlist.name();
      bench.period_ps = bench.netlist.clocks().period_ps;
      require(bench.period_ps > 0,
              "netlist carries no tp-clock directive (clock plan unknown)");
    } else {
      return usage(argv[0]);
    }

    const Stimulus stim =
        circuits::make_stimulus(bench, workload, cycles, 7);
    const FlowResult r = run_flow(bench, style, stim, options);

    std::printf("%s -> %s\n", bench.name.c_str(),
                std::string(style_name(style)).c_str());
    std::printf("  registers        %d\n", r.registers);
    std::printf("  area             %.0f um2\n", r.area_um2);
    std::printf("  power            %.3f mW (clock %.3f, seq %.3f, comb "
                "%.3f)\n",
                r.power.total_mw(), r.power.clock_mw, r.power.seq_mw,
                r.power.comb_mw);
    std::printf("  timing           setup %s (%.0f ps), hold %s (%.0f ps)\n",
                r.timing.setup_ok ? "OK" : "FAIL",
                r.timing.worst_setup_slack_ps,
                r.timing.hold_ok ? "OK" : "FAIL",
                r.timing.worst_hold_slack_ps);
    if (style == DesignStyle::kThreePhase) {
      std::printf("  inserted p2      %d (retimed %d, merged to %d)\n",
                  r.inserted_p2, r.retime.moved, r.retime.latches_after);
      std::printf("  clock gating     %d common-enable, %d DDCG, M2 %d/%d\n",
                  r.p2_gating.p2_latches_gated, r.ddcg.latches_gated,
                  r.m2.converted, r.m2.converted + r.m2.kept);
      std::printf("  flow run time    %.2f s (ILP %.3f s)\n",
                  r.times.total_s(), r.times.ilp_s);
    }
    if (options.check_equivalence) {
      for (const StageCheck& check : r.equiv.stages) {
        std::printf("  SEC %-12s %s (%.2f s)%s%s\n", check.stage.c_str(),
                    std::string(equiv::status_name(check.result.status))
                        .c_str(),
                    check.seconds,
                    check.result.detail.empty() ? "" : " — ",
                    check.result.detail.c_str());
      }
      if (const StageCheck* failed = r.equiv.first_failure()) {
        std::fprintf(stderr, "equivalence lost at stage '%s': %s\n",
                     failed->stage.c_str(), failed->result.detail.c_str());
        return 1;
      }
    }
    if (show_stats) {
      std::printf("\n%s", format_stats(compute_stats(r.netlist)).c_str());
    }
    if (show_profile) {
      std::printf("\n%s",
                  format_profile(
                      profile_timing(r.netlist, CellLibrary::nominal_28nm()),
                      10)
                      .c_str());
    }
    if (!dot_file.empty()) {
      std::ofstream dot(dot_file);
      write_register_graph_dot(r.netlist, dot);
      std::printf("  wrote            %s\n", dot_file.c_str());
    }
    if (!out_file.empty()) {
      std::ofstream out(out_file);
      write_verilog(r.netlist, out);
      std::printf("  wrote            %s\n", out_file.c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
