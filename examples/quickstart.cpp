// Quickstart: convert a hand-built FF pipeline to a 3-phase latch design,
// validate it by stream comparison, and print what the flow did.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/netlist/traverse.hpp"
#include "src/sim/stimulus.hpp"
#include "src/timing/sta.hpp"
#include "src/transform/convert.hpp"

using namespace tp;

namespace {

/// A 6-stage FF pipeline with an XOR per stage — the linear-pipeline case
/// of the paper's Fig. 1.
Netlist build_pipeline() {
  Netlist nl("pipeline6");
  const CellId clk = nl.add_input("clk");
  nl.set_clock_root(clk, Phase::kClk);
  nl.clocks() = single_phase_spec(/*period_ps=*/1500, nl.cell(clk).out);

  const CellId in = nl.add_input("in");
  const CellId key = nl.add_input("key");
  NetId data = nl.cell(in).out;
  for (int stage = 0; stage < 6; ++stage) {
    const CellId x = nl.add_gate(CellKind::kXor2,
                                 "mix" + std::to_string(stage),
                                 {data, nl.cell(key).out});
    const NetId q = nl.add_net("q" + std::to_string(stage));
    nl.add_cell(CellKind::kDff, "stage" + std::to_string(stage),
                {nl.cell(x).out, nl.cell(clk).out}, q, Phase::kClk);
    data = q;
  }
  nl.add_output("out", data);
  return nl;
}

}  // namespace

int main() {
  const Netlist ff = build_pipeline();
  std::printf("FF design: %zu flip-flops, %zu cells\n",
              ff.registers().size(), ff.live_cells().size());

  // Convert: the ILP decides which positions become single p1 latches.
  const ThreePhaseResult converted = to_three_phase(ff);
  const Netlist& latch_design = converted.netlist;
  std::printf("3-phase design: %zu latches (%d inserted p2), optimal=%s\n",
              latch_design.registers().size(), converted.inserted_p2,
              converted.assignment.optimal ? "yes" : "no");
  for (std::size_t u = 0; u < converted.assignment.k.size(); ++u) {
    std::printf("  position %zu: %s latch%s\n", u,
                converted.assignment.k[u] ? "p1" : "p3",
                converted.assignment.g[u] ? " + p2 follower" : "");
  }

  // Validate by streaming the same inputs through both designs (Sec. V).
  Rng rng(2024);
  const Stimulus stimulus = random_stimulus(2, 256, rng, 0.4);
  Simulator ff_sim(ff);
  SimOptions latch_options;
  latch_options.snapshot_event = 1;  // 3-phase snapshot instant
  Simulator latch_sim(latch_design, latch_options);
  const bool equal = streams_equal(run_stream(ff_sim, stimulus, 8),
                                   run_stream(latch_sim, stimulus, 8));
  std::printf("output streams identical: %s\n", equal ? "YES" : "NO");

  // Both designs meet the same cycle time (constraint C3).
  const CellLibrary& lib = CellLibrary::nominal_28nm();
  std::printf("FF      setup slack: %+6.0f ps\n",
              check_timing(ff, lib).worst_setup_slack_ps);
  std::printf("3-phase setup slack: %+6.0f ps\n",
              check_timing(latch_design, lib).worst_setup_slack_ps);
  return equal ? 0 : 1;
}
