// CPU conversion: run the complete flow on the ARM-M0-class core in all
// three design styles and print a Table-II-style comparison.
//
//   $ ./examples/cpu_conversion [benchmark] [cycles]
#include <cstdio>
#include <string>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"

using namespace tp;
using namespace tp::flow;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "ArmM0";
  const std::size_t cycles =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 192;

  const circuits::Benchmark bench = circuits::make_benchmark(name);
  std::printf("%s (%s): %zu FFs, %zu cells, %lld ps cycle, workload \"%s\"\n",
              bench.name.c_str(), bench.suite.c_str(),
              bench.netlist.registers().size(),
              bench.netlist.live_cells().size(),
              static_cast<long long>(bench.period_ps),
              bench.paper_workload.c_str());
  const Stimulus stimulus = circuits::make_stimulus(
      bench, circuits::Workload::kPaperDefault, cycles, 7);

  FlowResult results[3];
  const DesignStyle styles[] = {DesignStyle::kFlipFlop,
                                DesignStyle::kMasterSlave,
                                DesignStyle::kThreePhase};
  std::printf("\n%-5s %7s %10s %8s %8s %8s %8s  %s\n", "style", "regs",
              "area um2", "clk mW", "seq mW", "comb mW", "total", "timing");
  for (int i = 0; i < 3; ++i) {
    results[i] = run_flow(bench, styles[i], stimulus);
    const FlowResult& r = results[i];
    std::printf("%-5s %7d %10.0f %8.3f %8.3f %8.3f %8.3f  %s/%s\n",
                std::string(style_name(r.style)).c_str(), r.registers,
                r.area_um2, r.power.clock_mw, r.power.seq_mw,
                r.power.comb_mw, r.power.total_mw(),
                r.timing.setup_ok ? "setup-ok" : "SETUP-FAIL",
                r.timing.hold_ok ? "hold-ok" : "HOLD-FAIL");
  }

  const double ff = results[0].power.total_mw();
  const double ms = results[1].power.total_mw();
  const double p3 = results[2].power.total_mw();
  std::printf("\n3-phase power saving: %.1f%% vs FF, %.1f%% vs M-S\n",
              100.0 * (ff - p3) / ff, 100.0 * (ms - p3) / ms);
  std::printf("conversion details: %d p2 latches inserted, %d moved by "
              "retiming, %d gated by common enables, %d ICGs lost their "
              "latch (M2), %d latches under DDCG\n",
              results[2].inserted_p2, results[2].retime.moved,
              results[2].p2_gating.p2_latches_gated, results[2].m2.converted,
              results[2].ddcg.latches_gated);
  const bool ok = equivalent(results[0], results[1]) &&
                  equivalent(results[0], results[2]);
  std::printf("all styles stream-equivalent: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
