// lint_cli — standalone front end to the static phase-rule checker.
//
// Lint a built-in benchmark (optionally after converting it to one of the
// design styles) or an imported structural-Verilog netlist, and report the
// findings as text or JSON:
//
//   $ ./examples/lint_cli --circuit s5378 --style 3p
//   $ ./examples/lint_cli --in mydesign.v --json
//   $ ./examples/lint_cli --circuit DES3 --style 3p --stages
//   $ ./examples/lint_cli --circuit MD5 --style 3p --baseline waivers.txt
//   $ ./examples/lint_cli --list-rules
//
// Exit status: 0 clean, 1 unwaived violations, 2 usage error.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "src/circuits/workload.hpp"
#include "src/flow/flow.hpp"
#include "src/netlist/verilog.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--circuit NAME | --in FILE.v] [options]\n"
      "  --circuit NAME     built-in benchmark (see flow_cli --list)\n"
      "  --in FILE.v        structural Verilog netlist (TP_* cells)\n"
      "  --style raw|ff|ms|3p  lint the raw netlist or a converted design\n"
      "                        (default raw; conversion runs the flow)\n"
      "  --stages           rule-check after every flow stage and blame the\n"
      "                     first offending stage (non-raw styles only)\n"
      "  --json             emit one JSON report object instead of text\n"
      "  --waivers FILE     load a waiver file (see docs/lint.md)\n"
      "  --baseline FILE    write a waiver line per finding and exit 0\n"
      "  --disable RULE     skip a rule (repeatable)\n"
      "  --max-ddcg N       DDCG group fanout cap (default 32)\n"
      "  --cycles N         simulated cycles for flow styles (default 192)\n"
      "  --quiet            summary only, no per-finding lines\n"
      "  --list-rules       print the rule catalog and exit\n",
      argv0);
  return 2;
}

void list_rules() {
  for (const check::RuleSpec& spec : check::rule_registry()) {
    std::printf("%-18s %-8s %s [%s]\n", std::string(spec.name).c_str(),
                std::string(check::severity_name(spec.severity)).c_str(),
                std::string(spec.summary).c_str(),
                std::string(spec.paper_ref).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit, in_file, waiver_file, baseline_file;
  std::string style_text = "raw";
  bool json = false, quiet = false, stages = false;
  std::size_t cycles = 192;
  check::CheckOptions check_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--circuit") {
      circuit = value();
    } else if (arg == "--in") {
      in_file = value();
    } else if (arg == "--style") {
      style_text = value();
    } else if (arg == "--stages") {
      stages = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--waivers") {
      waiver_file = value();
    } else if (arg == "--baseline") {
      baseline_file = value();
    } else if (arg == "--disable") {
      check::RuleId rule;
      if (!check::rule_from_name(value(), &rule)) {
        std::fprintf(stderr, "unknown rule '%s' (see --list-rules)\n",
                     argv[i]);
        return 2;
      }
      check_options.disabled.push_back(rule);
    } else if (arg == "--max-ddcg") {
      check_options.ddcg_max_fanout = std::stoi(value());
    } else if (arg == "--cycles") {
      cycles = static_cast<std::size_t>(std::stoul(value()));
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    if (!waiver_file.empty()) {
      check_options.waivers = check::WaiverSet::parse_file(waiver_file);
    }

    circuits::Benchmark bench{"custom", "custom", Netlist("custom"), 0, ""};
    if (!circuit.empty()) {
      bench = circuits::make_benchmark(circuit);
    } else if (!in_file.empty()) {
      std::ifstream in(in_file);
      require(in.good(), "cannot open " + in_file);
      bench.netlist = read_verilog(in);
      bench.name = bench.netlist.name();
      bench.period_ps = bench.netlist.clocks().period_ps;
    } else {
      return usage(argv[0]);
    }

    check::CheckReport report;
    RuleChecks stage_reports;
    if (style_text == "raw") {
      report = check::run_checks(bench.netlist, check_options);
    } else {
      DesignStyle style;
      if (style_text == "ff") {
        style = DesignStyle::kFlipFlop;
      } else if (style_text == "ms") {
        style = DesignStyle::kMasterSlave;
      } else if (style_text == "3p") {
        style = DesignStyle::kThreePhase;
      } else {
        return usage(argv[0]);
      }
      FlowOptions options;
      options.lint = check_options;
      options.check_rules = stages;
      const Stimulus stim = circuits::make_stimulus(
          bench, circuits::Workload::kPaperDefault, cycles, 7);
      FlowResult result = run_flow(bench, style, stim, options);
      stage_reports = std::move(result.lint);
      // The final netlist still gets its own report (the flow raises the
      // lint DDCG cap to its own configuration; standalone linting keeps
      // the caller's cap).
      report = check::run_checks(result.netlist, check_options);
    }

    if (!baseline_file.empty()) {
      std::ofstream out(baseline_file);
      require(out.good(), "cannot open " + baseline_file);
      out << report.to_baseline();
      if (!quiet) {
        std::printf("wrote %d waiver line(s) to %s\n",
                    report.errors + report.warnings + report.infos,
                    baseline_file.c_str());
      }
      return 0;
    }

    if (json) {
      std::printf("%s\n", report.to_json().c_str());
    } else {
      for (const StageLint& stage : stage_reports.stages) {
        std::printf("stage %-12s %s (%d error(s), %d warning(s))\n",
                    stage.stage.c_str(),
                    stage.report.clean() ? "clean" : "VIOLATIONS",
                    stage.report.errors, stage.report.warnings);
      }
      if (const StageLint* blamed = stage_reports.first_violation()) {
        std::printf("first violation introduced by stage '%s'\n",
                    blamed->stage.c_str());
      }
      if (quiet) {
        std::printf("%s: %d error(s), %d warning(s), %d waived — %s\n",
                    report.design.c_str(), report.errors, report.warnings,
                    report.waived, report.clean() ? "clean" : "VIOLATIONS");
      } else {
        std::printf("%s", report.to_text().c_str());
      }
    }
    return report.clean() && stage_reports.all_clean() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
