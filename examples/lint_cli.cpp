// lint_cli — standalone front end to the static phase-rule checker.
//
// Lint a built-in benchmark (optionally after converting it to one of the
// design styles) or an imported structural-Verilog netlist, and report the
// findings as text or JSON:
//
//   $ ./examples/lint_cli --circuit s5378 --backend 3p
//   $ ./examples/lint_cli --in mydesign.v --json
//   $ ./examples/lint_cli --circuit DES3 --backend 3p --stages
//   $ ./examples/lint_cli --circuit s5378 --backend 3p --analysis
//   $ ./examples/lint_cli --in mydesign.v --analysis --x-source rst
//   $ ./examples/lint_cli --circuit MD5 --backend 3p --baseline waivers.txt
//   $ ./examples/lint_cli --circuit s5378 --backend det --domains
//   $ ./examples/lint_cli --list-rules
//
// --style is a deprecated alias of --backend (see docs/backends.md).
//
// Exit status: 0 clean, 1 unwaived violations, 2 usage error. Usage
// errors on rule tokens are structured: with --json they also emit a
// serve-style {"ok":false,"error":...} object on stdout.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "src/analysis/analysis.hpp"
#include "src/analysis/domains.hpp"
#include "src/circuits/workload.hpp"
#include "src/flow/serialize.hpp"
#include "src/netlist/verilog.hpp"
#include "src/util/argparse.hpp"
#include "src/util/json.hpp"
#include "src/util/strcat.hpp"

using namespace tp;
using namespace tp::flow;

namespace {

void list_rules() {
  for (const check::RuleSpec& spec : check::rule_registry()) {
    std::printf("%-18s %-8s %s [%s]\n", std::string(spec.name).c_str(),
                std::string(check::severity_name(spec.severity)).c_str(),
                std::string(spec.summary).c_str(),
                std::string(spec.paper_ref).c_str());
  }
}

/// Usage error for an unknown/misspelled rule token: always a stderr
/// line naming every valid spelling; with --json additionally a
/// serve-shaped {"ok":false,"error":...,"valid_rules":[...]} object on
/// stdout so scripted callers get the same structured error a serve
/// request would.
int unknown_rule_error(const std::string& token, bool json) {
  std::string valid;
  for (const check::RuleSpec& spec : check::rule_registry()) {
    if (!valid.empty()) valid += ", ";
    valid += spec.name;
  }
  if (json) {
    util::JsonWriter w;
    w.begin_object();
    w.key("ok").value(false);
    w.key("error").value(cat("unknown rule '", token, "'"));
    w.key("valid_rules").begin_array();
    for (const check::RuleSpec& spec : check::rule_registry()) {
      w.value(spec.name);
    }
    w.end_array();
    w.end_object();
    std::printf("%s\n", w.take().c_str());
  }
  std::fprintf(stderr, "unknown rule '%s' (valid: %s)\n", token.c_str(),
               valid.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string circuit, in_file, waiver_file, baseline_file;
  std::string backend_text, style_text;
  std::vector<std::string> disabled;
  bool json = false, quiet = false, stages = false, rules = false;
  bool analysis = false, domains = false;
  std::size_t cycles = 192;
  check::CheckOptions check_options;
  analysis::AnalysisOptions analysis_options;

  util::ArgParser parser(
      "lint_cli", "run the static phase-rule checker on a benchmark, a "
                  "converted design, or a Verilog netlist");
  parser.add_value("--circuit", &circuit,
                   "built-in benchmark (see flow_cli --list)", "NAME");
  parser.add_value("--in", &in_file,
                   "structural Verilog netlist (TP_* cells)", "FILE.v");
  parser.add_value("--backend", &backend_text,
                   "lint the raw netlist or a converted design: raw or a "
                   "backend token ff|ms|3p|pl|2p|det (default raw; "
                   "conversion runs the flow)",
                   "B");
  parser.add_value("--style", &style_text,
                   "deprecated alias of --backend", "B");
  parser.add_flag("--stages", &stages,
                  "rule-check after every flow stage and blame the first "
                  "offending stage (non-raw styles only)");
  parser.add_flag("--analysis", &analysis,
                  "also run the dataflow analyses (A1 X-propagation, A2 "
                  "min-delay races, A3 borrowing chains, A4/A5 CDC, A6 "
                  "RDC)");
  parser.add_flag("--domains", &domains,
                  "print the inferred clock/reset-domain table of the "
                  "linted netlist (with --json: its own JSON object on the "
                  "line before the report)");
  parser.add_list("--x-source", &analysis_options.x_sources,
                  "treat this input or register as post-reset X for A1 "
                  "(repeatable)", "NAME");
  parser.add_value("--borrow-budget", &analysis_options.borrow_budget_ps,
                   "A3 cumulative borrow budget in ps (default: one phase "
                   "segment)", "PS");
  parser.add_flag("--json", &json,
                  "emit one JSON report object instead of text");
  parser.add_value("--waivers", &waiver_file,
                   "load a waiver file (see docs/lint.md)", "FILE");
  parser.add_value("--baseline", &baseline_file,
                   "write a waiver line per finding and exit 0", "FILE");
  parser.add_list("--disable", &disabled, "skip a rule (repeatable)",
                  "RULE");
  parser.add_value("--max-ddcg", &check_options.ddcg_max_fanout,
                   "DDCG group fanout cap (default 32)");
  parser.add_value("--cycles", &cycles,
                   "simulated cycles for flow styles (default 192)");
  parser.add_flag("--quiet", &quiet, "summary only, no per-finding lines");
  parser.add_flag("--list-rules", &rules,
                  "print the rule catalog and exit");
  parser.parse_or_exit(argc, argv);

  if (rules) {
    list_rules();
    return 0;
  }
  for (const std::string& name : disabled) {
    check::RuleId rule;
    if (!check::rule_from_name(name, &rule)) {
      return unknown_rule_error(name, json);
    }
    check_options.disabled.push_back(rule);
  }

  try {
    if (!waiver_file.empty()) {
      check_options.waivers = check::WaiverSet::parse_file(waiver_file);
    }

    circuits::Benchmark bench{"custom", "custom", Netlist("custom"), 0, ""};
    if (!circuit.empty()) {
      bench = circuits::make_benchmark(circuit);
    } else if (!in_file.empty()) {
      std::ifstream in(in_file);
      require(in.good(), "cannot open " + in_file);
      bench.netlist = read_verilog(in);
      bench.name = bench.netlist.name();
      bench.period_ps = bench.netlist.clocks().period_ps;
    } else {
      std::fprintf(stderr, "one of --circuit or --in is required\n%s",
                   parser.usage().c_str());
      return 2;
    }

    analysis_options.check = check_options;
    check::CheckReport report;
    RuleChecks stage_reports;
    FlowResult result;
    // The netlist the report (and --domains table) describes.
    const Netlist* linted = &bench.netlist;
    // --backend wins over the deprecated --style alias; default raw.
    const std::string token = !backend_text.empty() ? backend_text
                              : !style_text.empty() ? style_text
                                                    : "raw";
    if (token == "raw") {
      report = check::run_checks(bench.netlist, check_options);
      if (analysis) {
        report.merge(analysis::run_analysis(bench.netlist, analysis_options));
      }
    } else {
      DesignStyle style;
      if (!style_from_name(token, &style)) {
        std::fprintf(stderr, "unknown --backend '%s' (valid: raw, %s)\n%s",
                     token.c_str(), backend_token_list().c_str(),
                     parser.usage().c_str());
        return 2;
      }
      FlowOptions options;
      options.lint = check_options;
      options.check_rules = stages;
      options.check_analysis = stages && analysis;
      options.borrow_budget_ps = analysis_options.borrow_budget_ps;
      const Stimulus stim = circuits::make_stimulus(
          bench, circuits::Workload::kPaperDefault, cycles, 7);
      result = run_flow(bench, style, stim, options);
      linted = &result.netlist;
      stage_reports = std::move(result.lint);
      // The final netlist still gets its own report (the flow raises the
      // lint DDCG cap to its own configuration; standalone linting keeps
      // the caller's cap).
      report = check::run_checks(result.netlist, check_options);
      if (analysis) {
        report.merge(
            analysis::run_analysis(result.netlist, analysis_options));
      }
    }

    if (!baseline_file.empty()) {
      std::ofstream out(baseline_file);
      require(out.good(), "cannot open " + baseline_file);
      out << report.to_baseline();
      if (!quiet) {
        std::printf("wrote %d waiver line(s) to %s\n",
                    report.errors + report.warnings + report.infos,
                    baseline_file.c_str());
      }
      return 0;
    }

    if (domains) {
      const analysis::DomainTable table = analysis::infer_domains(*linted);
      if (json) {
        std::printf("%s\n",
                    analysis::domain_table_json(*linted, table).c_str());
      } else {
        std::printf("%s", analysis::domain_table_text(*linted, table).c_str());
      }
    }
    if (json) {
      std::printf("%s\n", report.to_json().c_str());
    } else {
      for (const StageLint& stage : stage_reports.stages) {
        std::printf("stage %-12s %s (%d error(s), %d warning(s))\n",
                    stage.stage.c_str(),
                    stage.report.clean() ? "clean" : "VIOLATIONS",
                    stage.report.errors, stage.report.warnings);
      }
      if (const StageLint* blamed = stage_reports.first_violation()) {
        std::printf("first violation introduced by stage '%s'\n",
                    blamed->stage.c_str());
      }
      if (quiet) {
        std::printf("%s: %d error(s), %d warning(s), %d waived — %s\n",
                    report.design.c_str(), report.errors, report.warnings,
                    report.waived, report.clean() ? "clean" : "VIOLATIONS");
      } else {
        std::printf("%s", report.to_text().c_str());
      }
    }
    return report.clean() && stage_reports.all_clean() ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
