// Design inspection: structural statistics, slack profiles, phase-schedule
// exploration, and DOT export for a converted design — the debugging
// toolbox around the conversion flow.
//
//   $ ./examples/design_inspection [benchmark] [regs.dot]
#include <cstdio>
#include <fstream>
#include <string>

#include "src/circuits/benchmark.hpp"
#include "src/netlist/stats.hpp"
#include "src/phase/schedule.hpp"
#include "src/timing/report.hpp"
#include "src/transform/buffering.hpp"
#include "src/transform/clock_gating.hpp"
#include "src/transform/convert.hpp"
#include "src/retime/retime.hpp"

using namespace tp;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "s9234";
  const CellLibrary& lib = CellLibrary::nominal_28nm();

  circuits::Benchmark bench = circuits::make_benchmark(name);
  infer_clock_gating(bench.netlist);
  buffer_high_fanout(bench.netlist);

  std::printf("=== %s, FF design ===\n%s\n", name.c_str(),
              format_stats(compute_stats(bench.netlist)).c_str());

  ThreePhaseResult converted = to_three_phase(bench.netlist);
  retime_inserted_latches(converted.netlist, lib);
  std::printf("=== 3-phase design ===\n%s\n",
              format_stats(compute_stats(converted.netlist)).c_str());

  std::printf("=== slack profile (3-phase) ===\n%s\n",
              format_profile(profile_timing(converted.netlist, lib), 8)
                  .c_str());

  const ScheduleExploration schedule =
      explore_phase_schedule(converted.netlist, lib, 10);
  std::printf("=== phase schedule ===\nuniform thirds: %+.0f ps worst "
              "slack\nbest (e1=%lld, e2=%lld): %+.0f ps\n\n",
              schedule.uniform.worst_setup_slack_ps,
              static_cast<long long>(schedule.best.e1_ps),
              static_cast<long long>(schedule.best.e2_ps),
              schedule.best.worst_setup_slack_ps);

  if (argc > 2) {
    std::ofstream dot(argv[2]);
    write_register_graph_dot(converted.netlist, dot);
    std::printf("register graph written to %s\n", argv[2]);
  }
  return 0;
}
