// serve_cli — the conversion-as-a-service daemon.
//
// Runs the tp::serve::Server transport loop: accepts line-delimited JSON
// jobs (see src/serve/protocol.hpp) over a Unix-domain socket, a loopback
// TCP port, and/or a job-file drop directory, answers them from the
// content-addressed result cache when possible, and executes the misses
// as coalesced waves on the shared work-stealing executor.
//
//   $ ./examples/serve_cli --drop-dir /tmp/tp-jobs --cache-dir /tmp/tp-cache
//   $ ./examples/serve_cli --socket /tmp/tp.sock --threads 8
//   $ ./examples/serve_cli --tcp-port 7311
//
//   $ echo '{"id":"j1","type":"convert","benchmark":"s5378"}' > jobs/j1.job
//     (the answer appears in jobs/j1.result)
//
// Shutdown: a {"type":"shutdown"} job exits 0 after draining the
// in-flight wave and flushing the disk cache. SIGINT/SIGTERM do the same
// drain-and-flush but exit 130, so supervisors can tell a requested stop
// from an external one. Completed results are never lost either way.
//
// Exit status: 0 shutdown job, 2 usage error, 130 signal.
#include <atomic>
#include <csignal>
#include <cstdio>

#include "src/serve/server.hpp"
#include "src/util/argparse.hpp"

using namespace tp;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  std::size_t memory_entries = 1024, poll_ms = 50, tcp_port = 0;

  util::ArgParser parser(
      "serve_cli", "long-lived conversion service: line-delimited JSON "
                   "jobs over a socket or a drop directory, answered "
                   "through a content-addressed result cache");
  parser.add_value("--socket", &options.socket_path,
                   "Unix-domain socket path (default off)", "PATH");
  parser.add_value("--tcp-port", &tcp_port,
                   "loopback TCP port (default off)");
  parser.add_value("--drop-dir", &options.drop_dir,
                   "job-file drop directory: *.job in, *.result out "
                   "(default off)",
                   "DIR");
  parser.add_value("--cache-dir", &options.cache.dir,
                   "persistent cache directory (default off: memory only)",
                   "DIR");
  parser.add_value("--cache-entries", &memory_entries,
                   "in-memory cache entries before LRU eviction "
                   "(default 1024)");
  parser.add_value("--threads", &options.threads,
                   "worker threads (default TP_THREADS or hardware)");
  parser.add_value("--poll-ms", &poll_ms,
                   "transport poll granularity in ms (default 50)");
  parser.parse_or_exit(argc, argv);

  options.cache.memory_entries = memory_entries;
  options.tcp_port = static_cast<int>(tcp_port);
  options.poll_ms = static_cast<int>(poll_ms);
  options.stop = &g_stop;
  if (options.socket_path.empty() && options.tcp_port == 0 &&
      options.drop_dir.empty()) {
    std::fprintf(stderr,
                 "need at least one transport: --socket, --tcp-port, or "
                 "--drop-dir\n%s",
                 parser.usage().c_str());
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us

  try {
    serve::Server server(options);
    std::printf("serve_cli: %zu worker thread(s)%s%s%s%s\n",
                server.executor().thread_count(),
                options.socket_path.empty() ? "" : ", socket ",
                options.socket_path.c_str(),
                options.drop_dir.empty() ? "" : ", drop dir ",
                options.drop_dir.c_str());
    std::fflush(stdout);
    const int rc = server.serve();

    const serve::ServerCounters c = server.counters();
    std::printf(
        "serve_cli: %s after %llu request(s) in %llu wave(s); "
        "%llu cells (%llu cached, %llu deduped, %llu computed, %llu "
        "failed); cache hit rate %.1f%%\n",
        rc == 0 ? "shutdown" : "stopped by signal",
        static_cast<unsigned long long>(c.requests),
        static_cast<unsigned long long>(c.waves),
        static_cast<unsigned long long>(c.cells),
        static_cast<unsigned long long>(c.cells_cached),
        static_cast<unsigned long long>(c.cells_deduped),
        static_cast<unsigned long long>(c.cells_computed),
        static_cast<unsigned long long>(c.cells_failed),
        100.0 * c.cache.hit_rate());
    return rc;
  } catch (const Error& e) {
    std::fprintf(stderr, "serve_cli: %s\n", e.what());
    return 2;
  }
}
